"""Parallel-kernel benchmark: 256-node Clos serving, serial vs. shards.

The sharded conservative-parallel kernel (:mod:`repro.sim.parallel`)
makes two claims, and this benchmark measures both on one pinned
workload:

* **Determinism** — two claims, asserted separately.  (a) Partitioned
  execution is *self-deterministic*: every partitioned configuration —
  2 or 4 shards, in-process or process-per-shard — produces one
  byte-identical :class:`~repro.workload.serving.ServingStats`
  snapshot.  (b) Against serial, every count (posts, deliveries,
  churn, per-group tallies) and every reported quantile must match
  exactly.  What sharding does *not* promise to reproduce is serial's
  same-instant tie order on contended links: when two walks claim one
  channel in the same simulated instant, serial grants them in global
  scheduling order, while a shard grants them in its local order — a
  swap costs the loser one serialization time and saves the winner
  the same (counts and conservative-window safety are untouched; a
  genuinely late message would raise in ``schedule_callback``).  The
  probe measures that drift — on this workload, a few µs of mean
  shift in 2 of 96 groups — and reports it instead of calling it
  either zero or noise.  Workloads without such ties (the golden
  trace, the fig-3 sweep, the smoke serving tests) replay serial
  byte-identically, which the test suite asserts.
* **Scaling** — with one OS process per shard, events/sec should grow
  with workers.  The conservative conductor only pays off when a safe
  window carries enough work to amortize the per-window pipe
  round-trip, so the workload is sized for that regime: a 256-node
  two-level Clos with long cables (the cut-link latency *is* the
  lookahead) and enough concurrent groups that every window is busy.

The wall-clock comparison needs real cores.  On a single-CPU host the
process passes would just time-slice one core, so they are skipped and
the report carries ``"parallel_comparison": "skipped-1cpu"`` (the same
honesty marker :func:`repro.perf.bench_kernel.bench_figure` uses); the
determinism probe still runs — it is a correctness claim, not a speed
claim.  CI regenerates this report on a multi-core runner and gates
the 4-worker median speedup at :data:`SCALING_FLOOR`.

Usage::

    python -m repro.perf.bench_parallel           # full, BENCH_parallel.json
    python -m repro.perf.bench_parallel --smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from dataclasses import replace
from statistics import median
from typing import Any

__all__ = [
    "parallel_spec",
    "bench_parallel",
    "WORKER_COUNTS",
    "SCALING_FLOOR",
    "main",
]

#: Shard counts measured against serial (process-per-shard).
WORKER_COUNTS = (2, 4)

#: Minimum acceptable median events/sec speedup vs. serial, per worker
#: count, enforced by CI on multi-core runners (``tools/check_perf.py``
#: style gate in the workflow).  The 4-worker floor is the PR's
#: acceptance bar; the 2-worker floor just catches a conductor that
#: stopped overlapping shards at all.
SCALING_FLOOR = {2: 1.2, 4: 2.0}


def parallel_spec(smoke: bool = False):
    """The canonical partitioning workload (pinned spec + seed).

    256 nodes on a two-level Clos (radix 16: 32 leaves, 8 spines), 96
    concurrent groups of 6 cycling through all four sustained-capable
    schemes, Poisson arrivals, no churn (membership is partitioned
    state, so churn and sharding are mutually exclusive by spec
    validation).  The cost model pins long cables — 4 µs links, 6 µs
    crossbar hops — because the conservative lookahead is the minimum
    cut-link latency: long cables mean wide safe windows, the regime
    where sharding pays for its synchronization (see
    ``docs/performance.md``).  Short-cable clusters simulate fastest
    serially; this benchmark is about the clusters that don't.
    """
    from repro.gm.params import GMCostModel
    from repro.scenario import TrafficSpec, serving_point

    return serving_point(
        n_nodes=256,
        traffic=TrafficSpec(
            duration_us=2_000.0 if smoke else 10_000.0,
            n_groups=96,
            group_size=6,
            rate_per_group=1 / 500.0,
            sizes=(8_192, 32_768),
            schemes=(
                "nic_based", "nic_multisend", "host_based", "nic_assisted",
            ),
            churn_interval_us=0.0,
            warmup_us=500.0 if smoke else 1_000.0,
        ),
        cost=GMCostModel(link_latency=4.0, switch_hop_latency=6.0),
        seed=23,
        name="bench_parallel",
    )


def _partitioned(spec, shards: int, processes: bool):
    from repro.scenario.spec import PartitionSpec

    return replace(
        spec,
        partition=PartitionSpec(
            shards=shards, partitioner="switch_affine", processes=processes
        ),
    )


def bench_parallel(repeats: int = 3, smoke: bool = False) -> dict[str, Any]:
    """Serial vs. 2- and 4-shard rates on the pinned 256-node workload.

    Every pass (serial and partitioned) must produce the same
    observables — the rate comparison is only meaningful between runs
    of the *same* simulation.  Rates are ``serial sim_events / wall``
    for every configuration (the same work divided by each mode's wall
    clock, so the ratios are honest speedups); CI gates the median.
    """
    import repro.workload  # noqa: F401  (registers the serving runner)
    from repro.scenario import Harness

    cpus = os.cpu_count() or 1
    spec = parallel_spec(smoke=smoke)

    def one_pass(s) -> tuple[Any, float]:
        started = time.perf_counter()
        stats = Harness(s).run().values[0]
        wall = time.perf_counter() - started
        return stats, wall

    def tie_free_view(snap: dict[str, Any]) -> dict[str, Any]:
        """The snapshot minus the fields same-instant ties may move.

        Everything here must match serial exactly: the counts, the
        rates derived from counts, and the reported quantiles.  What
        is dropped: ``sim_events`` (a tie that parks a walk serial
        fast-claims adds one counted grant event) and the per-group
        mean/max delivery times (a grant swap shifts individual
        latencies by one serialization time).  See the module
        docstring.
        """
        view = {k: v for k, v in snap.items() if k != "sim_events"}
        view["per_group"] = {
            gid: {
                k: v
                for k, v in group.items()
                if k not in ("mean_delivery_us", "max_delivery_us")
            }
            for gid, group in snap["per_group"].items()
        }
        return view

    def tie_drift_us(snap: dict[str, Any], ref: dict[str, Any]) -> float:
        """Largest per-group mean/max delivery shift vs. serial (µs)."""
        drift = 0.0
        for gid, group in snap["per_group"].items():
            for k in ("mean_delivery_us", "max_delivery_us"):
                drift = max(drift, abs(group[k] - ref["per_group"][gid][k]))
        return drift

    gc.collect()  # GC-isolate from whatever ran earlier in-process
    one_pass(parallel_spec(smoke=True))  # warmup, untimed
    serial_passes = [one_pass(spec) for _ in range(max(1, repeats))]
    serial_events = serial_passes[0][0].sim_events
    serial_snap = serial_passes[0][0].snapshot()
    for stats, _ in serial_passes[1:]:
        if stats.snapshot() != serial_snap:
            raise AssertionError("serial serving run is not deterministic")
    reference = tie_free_view(serial_snap)
    partitioned_snap: dict[str, Any] | None = None

    def check_partitioned(stats, label: str) -> None:
        nonlocal partitioned_snap
        snap = stats.snapshot()
        if tie_free_view(snap) != reference:
            raise AssertionError(
                f"{label}: partitioned counts/quantiles diverged from serial"
            )
        if partitioned_snap is None:
            partitioned_snap = snap
        elif snap != partitioned_snap:
            raise AssertionError(
                f"{label}: partitioned run is not shard-count/mode invariant"
            )

    def rate_block(passes) -> dict[str, Any]:
        rates = [
            round(serial_events / wall) for _, wall in passes if wall > 0
        ]
        _stats, best_wall = min(passes, key=lambda p: p[1])
        return {
            "events": serial_events,
            "wall_s": round(best_wall, 4),
            "events_per_sec": max(rates) if rates else None,
            "median_events_per_sec": round(median(rates)) if rates else None,
            "repeat_rates": rates,
        }

    report: dict[str, Any] = {
        "benchmark": "repro.perf.bench_parallel",
        "workload": (
            "256-node Clos (radix 16), 96 groups x 6, mixed schemes, "
            f"{spec.traffic.duration_us:g} us, long-cable cost model"
        ),
        "cpu_count": cpus,
        "serial": rate_block(serial_passes),
        "determinism": {},
        "workers": {},
    }

    # Determinism probe: runs on any host — it is the correctness half
    # of the benchmark (the scaling half below needs real cores).
    for shards in WORKER_COUNTS:
        stats, _ = one_pass(_partitioned(spec, shards, processes=False))
        check_partitioned(stats, f"{shards}-shard inline")
        snap = stats.snapshot()
        report["determinism"][str(shards)] = {
            "counts_and_quantiles": "identical",
            "sim_events_drift": stats.sim_events - serial_events,
            "tie_drift_us": round(tie_drift_us(snap, serial_snap), 3),
        }

    if cpus == 1:
        report["parallel_comparison"] = "skipped-1cpu"
        return report

    report["parallel_comparison"] = "measured"
    serial_median = report["serial"]["median_events_per_sec"]
    for shards in WORKER_COUNTS:
        gc.collect()  # same GC footing as the serial passes
        pspec = _partitioned(spec, shards, processes=True)
        one_pass(pspec)  # warmup: fork + import cost out of the timing
        passes = [one_pass(pspec) for _ in range(max(1, repeats))]
        for stats, _ in passes:
            check_partitioned(stats, f"{shards}-worker processes")
        block = rate_block(passes)
        block["speedup_vs_serial_median"] = (
            round(block["median_events_per_sec"] / serial_median, 2)
            if serial_median
            else None
        )
        block["scaling_floor"] = SCALING_FLOOR.get(shards)
        report["workers"][str(shards)] = block
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf-parallel",
        description="Benchmark the sharded kernel against serial.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-long run proving the harness works",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timed passes per configuration (default: 3)",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_parallel.json",
        help="report path (default: BENCH_parallel.json)",
    )
    parser.add_argument(
        "--check-scaling", action="store_true",
        help="exit non-zero if any measured median speedup is below "
        "its SCALING_FLOOR (no-op when the comparison was skipped)",
    )
    args = parser.parse_args(argv)
    report = bench_parallel(repeats=args.repeats, smoke=args.smoke)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.check_scaling and report["parallel_comparison"] == "measured":
        failures = [
            f"{shards} workers: {block['speedup_vs_serial_median']}x "
            f"< floor {block['scaling_floor']}x"
            for shards, block in report["workers"].items()
            if block["speedup_vs_serial_median"] is not None
            and block["scaling_floor"] is not None
            and block["speedup_vs_serial_median"] < block["scaling_floor"]
        ]
        if failures:
            print("scaling gate FAILED: " + "; ".join(failures))
            return 1
        print("scaling gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
