"""Multicast group state, as stored in each NIC's group table.

"Multicast send tokens are queued by group.  Each multicast group has a
unique group identifier.  For each group, the NIC keeps track of: (1) a
receive sequence number ... from its parent, (2) a send sequence number
... sent out, and (3) an array of sequence numbers to record the
acknowledged sequence number from each child" (paper §5).

Each NIC stores only its *local view* of the spanning tree — its parent
and children — preposted by the host (tree construction happens at the
host; the NIC only does protocol processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import GroupError
from repro.gm.tokens import SendToken
from repro.nic.lanai import HostCommand
from repro.proto import SendWindow
from repro.proto.engines import get_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.memory import RegisteredRegion
    from repro.gm.tokens import ReceiveToken
    from repro.mcast.reliability import McastRecord
    from repro.proto import RetransmitTimer
    from repro.trees.base import SpanningTree

__all__ = [
    "GroupState",
    "GroupTable",
    "CreateGroupCommand",
    "McastSendCommand",
    "ReplayCommand",
    "UpdateGroupCommand",
    "local_views",
]


@dataclass
class _HeldMessage:
    """An in-progress / retransmittable multicast message at one NIC.

    At an intermediate node the host replica stays registered (pinned)
    until every child acknowledged every packet — retransmission re-DMAs
    from host memory instead of hogging NIC receive buffers (paper §5).
    """

    msg_id: int
    nchunks: int
    msg_size: int
    src: int
    #: chunks fully received (RDMAed to the host)
    chunks_delivered: int = 0
    #: send records for this message not yet acked by every child
    pending_records: int = 0
    #: whether every chunk has been forwarded/recorded
    all_records_created: bool = False
    delivered_to_host: bool = False
    token: "ReceiveToken | None" = None
    region: "RegisteredRegion | None" = None
    app_info: dict = field(default_factory=dict)


@dataclass
class GroupState:
    """One NIC's view of one multicast group."""

    group_id: int
    root: int
    parent: int | None
    children: tuple[int, ...]
    port_num: int = 0
    #: hops from the tree root (0 at the root); the NACK family scales
    #: its suppression timers by it — repairs cascade down the tree, so
    #: deeper receivers wait longer before concluding nobody upstream
    #: is already handling their gap
    depth: int = 0
    #: reliability engine family driving this group's windows (a
    #: :mod:`repro.proto.engines` registry name)
    reliability_family: str = "ack_window"
    #: family-specific tunable overrides (engine defaults fill the rest)
    reliability_params: dict = field(default_factory=dict)

    # (2) send sequence number (root allocates; intermediates reuse the
    # root's numbers — "the same sequence number and send record").
    next_send_seq: int = 1
    # (1) receive sequence number from the parent.
    recv_seq: int = 0
    # (3) per-child acknowledged sequence numbers.
    child_acked: dict[int, int] = field(default_factory=dict)
    #: unacked send records by seq (backing dict of ``window``)
    records: dict[int, "McastRecord"] = field(default_factory=dict)
    #: msg_id -> (first seq, nchunks, msg_size, trace_id) for every
    #: message this NIC has originated or received on the group.  Lets
    #: the recovery path regenerate retired send records when a regraft
    #: hands this node a new child that missed data (the payload itself
    #: is re-DMAed from the still-registered host replica); the trace id
    #: keeps recovery replays attributable in the flight recorder.
    msg_meta: dict[int, tuple[int, int, int, int]] = field(
        default_factory=dict
    )
    #: in-progress / held messages by msg_id
    held: dict[int, _HeldMessage] = field(default_factory=dict)
    #: :class:`~repro.proto.window.SendWindow` view over ``records``
    window: SendWindow = field(init=False, repr=False)
    #: retransmission timer, attached lazily by the reliability
    #: component on first arm (stays with this state across replacement,
    #: like the timer closures it supersedes)
    timer: "RetransmitTimer | None" = field(default=None, init=False, repr=False)
    #: engine-owned scratch state (receiver gap tracking, parity blocks,
    #: repair suppression); see :mod:`repro.proto.engines.base`
    rel_state: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.parent is None and self.root is not None:
            # Only the true root has no parent.
            pass
        for child in self.children:
            self.child_acked.setdefault(child, 0)
        self.window = SendWindow(self.records)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def alloc_seq(self) -> int:
        seq = self.next_send_seq
        self.next_send_seq += 1
        return seq

    def min_child_acked(self) -> int:
        if not self.children:
            return self.next_send_seq - 1
        return min(self.child_acked.values())


class GroupTable:
    """The group table stored in NIC memory."""

    def __init__(self) -> None:
        self._groups: dict[int, GroupState] = {}

    def install(self, state: GroupState) -> None:
        if state.group_id in self._groups:
            raise GroupError(f"group {state.group_id} already installed")
        self._groups[state.group_id] = state

    def get(self, group_id: int) -> GroupState | None:
        return self._groups.get(group_id)

    def require(self, group_id: int) -> GroupState:
        state = self._groups.get(group_id)
        if state is None:
            raise GroupError(f"unknown multicast group {group_id}")
        return state

    def remove(self, group_id: int) -> None:
        if group_id not in self._groups:
            raise GroupError(f"unknown multicast group {group_id}")
        del self._groups[group_id]

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)


def local_views(
    group_id: int,
    tree: "SpanningTree",
    port_num: int = 0,
    family: str = "ack_window",
    params: dict | None = None,
) -> dict[int, GroupState]:
    """Split a spanning tree into per-node group-table entries.

    ``family``/``params`` pick the reliability engine driving every
    member's window (validated eagerly against the engine registry);
    all members of a group run the same family.
    """
    get_engine(family)  # unknown family fails here, not mid-broadcast
    views: dict[int, GroupState] = {}
    for node in tree.nodes:
        parent = tree.parent_of(node)
        views[node] = GroupState(
            group_id=group_id,
            root=tree.root,
            parent=parent,
            children=tree.children_of(node),
            port_num=port_num,
            depth=tree.depth_of(node),
            reliability_family=family,
            reliability_params=dict(params) if params else {},
        )
    return views


@dataclass
class CreateGroupCommand(HostCommand):
    """Host → NIC: prepost this node's view of a multicast tree."""

    state: GroupState | None = None
    replace: bool = False


@dataclass
class McastSendCommand(HostCommand):
    """Host → NIC: root-side multisend into a group."""

    token: SendToken | None = None
    group_id: int = -1


@dataclass
class UpdateGroupCommand(HostCommand):
    """Host → NIC: rewrite this node's tree view after a repair.

    Issued by the recovery control plane
    (:class:`repro.mcast.recovery.RecoveryManager`) when a tree heals:
    the group's parent/children change **in place**, preserving
    sequence state.  Children that left take their pending-ack
    obligations with them (their new parent resyncs them); children
    that arrived are resynced from this node's retransmit window,
    regenerating retired records from ``msg_meta`` where needed.
    """

    group_id: int = -1
    parent: int | None = None
    children: tuple[int, ...] = ()


@dataclass
class ReplayCommand(HostCommand):
    """Host → NIC: replay all outstanding records to one child.

    Issued when a child's connectivity recovers — instead of waiting
    out the retransmission timer, the parent pushes the backlog at
    detection time.
    """

    group_id: int = -1
    child: int = -1
