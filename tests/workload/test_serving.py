"""Serving-workload tests: determinism, stats, churn, obs integration."""

import pytest

import repro.workload  # noqa: F401  (registers the serving runner)
from repro.obs.health import serving_section
from repro.obs.registry import MetricsRegistry
from repro.scenario import Harness, TrafficSpec, serving_point


def _small_spec(**traffic_overrides):
    traffic = dict(
        duration_us=8_000.0,
        n_groups=3,
        group_size=3,
        rate_per_group=1 / 400.0,
        sizes=(1_024, 4_096),
        schemes=("nic_based", "nic_multisend", "host_based"),
        churn_interval_us=1_500.0,
        warmup_us=1_000.0,
    )
    traffic.update(traffic_overrides)
    return serving_point(
        n_nodes=8, traffic=TrafficSpec(**traffic), seed=7, name="t-serving"
    )


def test_pinned_seed_runs_are_bit_identical():
    """Two runs of the same spec+seed produce identical snapshots."""
    first = Harness(_small_spec()).run().values[0]
    second = Harness(_small_spec()).run().values[0]
    assert first.snapshot() == second.snapshot()
    assert first.latencies_us == second.latencies_us


def test_different_seed_changes_the_schedule():
    base = Harness(_small_spec()).run().values[0]
    spec = _small_spec()
    reseeded = serving_point(
        n_nodes=8, traffic=spec.traffic, seed=8, name="t-serving"
    )
    other = Harness(reseeded).run().values[0]
    assert base.snapshot() != other.snapshot()


def test_serving_stats_shape():
    stats = Harness(_small_spec()).run().values[0]
    assert stats.msgs_posted > 0
    assert stats.msgs_delivered > 0
    assert stats.n_groups == 3
    assert set(stats.per_group) == {0, 1, 2}
    # Schemes cycle across groups through the registry.
    assert [g.scheme for g in stats.per_group.values()] == [
        "nic_based", "nic_multisend", "host_based",
    ]
    # Every measured delivery is accounted in the latency list.
    assert len(stats.latencies_us) == stats.msgs_delivered
    assert stats.quantile(0.99) >= stats.quantile(0.50) > 0.0
    # Churn was scheduled and applied (epochs recorded per group).
    assert stats.churn_events > 0
    assert sum(g.churn_epochs for g in stats.per_group.values()) > 0


def test_metrics_registry_feeds_serving_section():
    registry = MetricsRegistry()
    stats = Harness(_small_spec(), registry=registry).run().values[0]
    section = serving_section(registry)
    assert section is not None
    assert section["serving.msgs_posted"] == stats.msgs_posted
    assert section["serving.msgs_delivered"] == stats.msgs_delivered
    assert section["delivery_us"]["count"] == stats.msgs_delivered
    assert section["delivered_msgs_per_sec"] == pytest.approx(
        stats.delivered_msgs_per_sec
    )
    # One-shot runs (no serving.* instruments) produce no section.
    assert serving_section(MetricsRegistry()) is None


def test_trace_arrivals_replay_exactly():
    spec = _small_spec(
        arrival="trace",
        rate_per_group=1e-3,
        trace_arrivals=((100.0, 0), (200.0, 1), (300.0, 0)),
        churn_interval_us=0.0,
        warmup_us=0.0,
    )
    stats = Harness(spec).run().values[0]
    assert stats.per_group[0].posted == 2
    assert stats.per_group[1].posted == 1
    assert stats.per_group[2].posted == 0
