"""Bench: the paper's future-work extensions (§7), implemented.

* NIC-based barrier vs the dissemination barrier;
* NIC-based allreduce vs host-based binomial reduce+bcast;
* rendezvous (RDMA-style) NIC-based broadcast beyond the eager limit vs
  the host-based rendezvous broadcast.
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator


def _collective_time(n, program_factory, **comm_kw):
    cluster = Cluster(ClusterConfig(n_nodes=n))
    comm = Communicator(cluster, **comm_kw)
    times = {}
    comm.run(program_factory(times))
    return max(times.values())


def test_nic_barrier_scaling(once):
    def sweep():
        rows = {}
        for n in (4, 8, 16, 32):
            def make(times):
                def program(ctx):
                    yield from ctx.barrier(nic=True)   # group warmup
                    yield from ctx.barrier(nic=False)  # align
                    t0 = ctx.sim.now
                    yield from ctx.barrier(nic=False)
                    t_host = ctx.sim.now - t0
                    t0 = ctx.sim.now
                    yield from ctx.barrier(nic=True)
                    times[ctx.rank] = (t_host, ctx.sim.now - t0)

                return program

            cluster = Cluster(ClusterConfig(n_nodes=n))
            comm = Communicator(cluster)
            times = {}
            comm.run(make(times))
            rows[n] = (
                max(t for t, _ in times.values()),
                max(t for _, t in times.values()),
            )
        return rows

    rows = once(sweep)
    print()
    print(f"{'ranks':>6} {'dissemination us':>17} {'NIC barrier us':>15}")
    for n, (host, nic) in rows.items():
        print(f"{n:>6} {host:>17.1f} {nic:>15.1f}")
        assert nic < host, n
    # The NIC barrier's advantage grows with scale (log rounds of host
    # round trips vs one NIC tree sweep).
    assert rows[32][0] / rows[32][1] > rows[4][0] / rows[4][1]


def test_nic_allreduce_vs_host(once):
    def sweep():
        rows = {}
        for n in (8, 16):
            for nic in (False, True):
                def make(times, nic=nic):
                    def program(ctx):
                        yield from ctx.allreduce(1, nic=True)  # group warmup
                        yield from ctx.barrier()
                        t0 = ctx.sim.now
                        out = yield from ctx.allreduce(ctx.rank, nic=nic)
                        assert out == n * (n - 1) // 2
                        times[ctx.rank] = ctx.sim.now - t0

                    return program

                cluster = Cluster(ClusterConfig(n_nodes=n))
                comm = Communicator(cluster)
                times = {}
                comm.run(make(times))
                rows[(n, nic)] = max(times.values())
        return rows

    rows = once(sweep)
    print()
    print(f"{'ranks':>6} {'host us':>9} {'NIC us':>8} {'factor':>7}")
    for n in (8, 16):
        host, nic = rows[(n, False)], rows[(n, True)]
        print(f"{n:>6} {host:>9.1f} {nic:>8.1f} {host / nic:>7.2f}")
        assert nic < host, n


def test_rdma_bcast_beyond_eager(once):
    def sweep():
        rows = {}
        for size in (32768, 65536, 131072):
            for rdma in (False, True):
                def make(times, size=size):
                    def program(ctx):
                        yield from ctx.bcast(root=0, size=size)  # warmup
                        yield from ctx.barrier()
                        t0 = ctx.sim.now
                        yield from ctx.bcast(root=0, size=size)
                        times[ctx.rank] = ctx.sim.now - t0

                    return program

                rows[(size, rdma)] = _collective_time(
                    16, make, nic_bcast_rdma=rdma
                )
        return rows

    rows = once(sweep)
    print()
    print(f"{'size':>8} {'host rendezvous us':>19} {'NIC rdma us':>12} {'factor':>7}")
    for size in (32768, 65536, 131072):
        host, rdma = rows[(size, False)], rows[(size, True)]
        print(f"{size:>8} {host:>19.1f} {rdma:>12.1f} {host / rdma:>7.2f}")
        # The NIC-based RDMA broadcast wins beyond the eager limit too —
        # the pipelined-forwarding benefit compounds with message size.
        assert rdma < host, size
    f32 = rows[(32768, False)] / rows[(32768, True)]
    f128 = rows[(131072, False)] / rows[(131072, True)]
    assert f128 > f32 * 0.9
