"""Golden-value identity for the scenario-backed measurement stack.

The ``measure_*`` helpers were refactored into thin wrappers over
:class:`repro.scenario.Harness`; the figure modules now declare
:class:`~repro.scenario.ScenarioGrid` sweeps.  Both fixtures here were
captured from the PRE-refactor code, so these tests pin the refactor to
*byte-identical* results:

* ``golden_quick_tables.txt`` — the rendered quick tables of fig3-fig7,
  exactly as the serial CLI printed them before the scenario layer
  existed;
* ``golden_measure_values.json`` — full-precision (``repr``) spot values
  of every ``measure_*`` entry point, including per-destination
  delivery times.

A mismatch means the harness moved an event: program spawn order, round
barriers, or the memoized ack-trip changed the schedule.

Regenerate the fixtures (only after deliberately changing the model,
never to paper over a diff)::

    PYTHONPATH=src python tests/experiments/test_golden_regression.py
"""

import json
from pathlib import Path

from repro.experiments.cli import run_figure
from repro.experiments.fig6 import skew_sweep_point
from repro.experiments.runner import (
    measure_gm_multicast,
    measure_mpi_bcast,
    measure_multisend,
    measure_unicast,
)
from repro.gm.params import GMCostModel
from repro.scenario import harness

TABLES = Path(__file__).with_name("golden_quick_tables.txt")
VALUES = Path(__file__).with_name("golden_measure_values.json")
QUICK_FIGURES = ("fig3", "fig4", "fig5", "fig6", "fig7")


def quick_tables() -> str:
    chunks = [
        run_figure(fig, quick=True, jobs=1).render() for fig in QUICK_FIGURES
    ]
    return "\n\n".join(chunks) + "\n"


def measure_values() -> dict:
    cost = GMCostModel()
    m = measure_gm_multicast(8, 4096, "nb", iterations=5, warmup=2)
    hb = measure_gm_multicast(8, 4096, "hb", iterations=5, warmup=2)
    sk = skew_sweep_point(8, True, 800.0, 4, 6, cost)
    return {
        "unicast_size0": repr(measure_unicast(cost, size=0)),
        "unicast_size64_it5": repr(measure_unicast(size=64, iterations=5)),
        "multisend_nb_4dest_64B": repr(
            measure_multisend(4, 64, "nb", iterations=5, warmup=2)
        ),
        "multisend_hb_4dest_64B": repr(
            measure_multisend(4, 64, "hb", iterations=5, warmup=2)
        ),
        "gm_nb_8n_4096B_latency": repr(m.latency),
        "gm_nb_8n_4096B_ack_trip": repr(m.ack_trip),
        "gm_nb_8n_4096B_per_dest": {
            str(k): repr(v) for k, v in m.per_dest_delivery.items()
        },
        "gm_hb_8n_4096B_latency": repr(hb.latency),
        "mpi_nb_6r_512B": repr(
            measure_mpi_bcast(6, 512, nic=True, iterations=4, warmup=2)
        ),
        "mpi_hb_6r_512B": repr(
            measure_mpi_bcast(6, 512, nic=False, iterations=4, warmup=2)
        ),
        "skew_nb_8n_max800_4B_cpu": repr(sk.mean_bcast_cpu_time),
        "skew_nb_8n_max800_4B_applied": repr(sk.mean_applied_skew),
    }


def test_quick_tables_byte_identical():
    assert quick_tables() == TABLES.read_text()


def test_measure_values_exact():
    golden = json.loads(VALUES.read_text())
    assert measure_values() == golden


def test_ack_trip_memoized_per_cost_model():
    """The ack-trip probe runs once per cost model and never drifts."""
    cost = GMCostModel()
    harness._ACK_TRIP_CACHE.pop(cost, None)
    first = harness.measured_ack_trip(cost)
    assert cost in harness._ACK_TRIP_CACHE
    # Second call is a pure cache hit...
    assert harness.measured_ack_trip(cost) is first
    # ...and the cached value is exactly the uncached measurement.
    assert first == measure_unicast(cost, size=0)
    # Distinct cost models get distinct cache slots.
    other = GMCostModel(link_latency=cost.link_latency * 2)
    harness._ACK_TRIP_CACHE.pop(other, None)
    assert harness.measured_ack_trip(other) != first
    assert set(harness._ACK_TRIP_CACHE) >= {cost, other}


if __name__ == "__main__":  # regenerate fixtures
    TABLES.write_text(quick_tables())
    with VALUES.open("w", encoding="utf-8") as fh:
        json.dump(measure_values(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {TABLES} and {VALUES}")
