"""Time-series acceptance: windowed snapshots of a serving run.

Drives the committed ``examples/scenarios/serving_churn.json`` workload
(20ms, 8 groups, churn) with a :class:`TimeSeriesRecorder` attached and
pins the acceptance bars: at least 10 windowed snapshots, and per-window
deltas that total exactly to the final registry snapshot.  Also pins
that installing the sampler does not perturb the workload itself.
"""

import json
from pathlib import Path

import pytest

import repro.workload  # noqa: F401  (registers the serving runner)
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder, render_timeseries
from repro.scenario.harness import Harness
from repro.scenario.spec import ScenarioSpec

SPEC_PATH = (
    Path(__file__).resolve().parents[2]
    / "examples" / "scenarios" / "serving_churn.json"
)


def _load_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict(json.loads(SPEC_PATH.read_text()))


@pytest.fixture(scope="module")
def recorded():
    spec = _load_spec()
    registry = MetricsRegistry()
    ts = TimeSeriesRecorder(registry, interval_us=1000.0)
    result = Harness(spec, registry=registry, timeseries=ts).run()
    return spec, registry, ts, result.values[0]


def test_emits_at_least_ten_windows(recorded):
    spec, _registry, ts, _stats = recorded
    # 20000us at 1000us windows: 20 sampler windows + the closing one.
    assert len(ts.snapshots) >= 10
    assert ts.snapshots[-1]["t"] == spec.traffic.duration_us
    windows = [s["window"] for s in ts.snapshots]
    assert windows == list(range(len(windows)))


def test_delta_totals_match_final_registry(recorded):
    _spec, registry, ts, stats = recorded
    totals = ts.totals()
    assert totals, "serving counters must be tracked"
    for name, total in totals.items():
        assert total == pytest.approx(registry.value(name)), name
    assert totals["serving.msgs_delivered"] == stats.msgs_delivered
    assert totals["serving.msgs_posted"] == stats.msgs_posted


def test_quantile_blocks_track_delivery_histogram(recorded):
    _spec, registry, ts, _stats = recorded
    last = ts.snapshots[-1]["quantiles"]
    assert "serving.delivery_us" in last
    hist = registry.get("serving.delivery_us")
    assert last["serving.delivery_us"]["count"] == hist.count
    assert last["serving.delivery_us"]["p99"] == hist.percentile(0.99)


def test_render_and_dict_shapes(recorded):
    _spec, _registry, ts, _stats = recorded
    text = render_timeseries(ts)
    assert "time series" in text and "msgs_delivered" in text
    payload = ts.to_dict()
    assert payload["windows"] == len(ts.snapshots)
    json.dumps(payload)  # JSON-ready end to end


def test_sampler_does_not_perturb_the_workload(recorded):
    _spec, _registry, _ts, stats = recorded
    bare = Harness(_load_spec()).run().values[0]
    assert bare.msgs_posted == stats.msgs_posted
    assert bare.msgs_delivered == stats.msgs_delivered
    assert bare.latencies_us == stats.latencies_us
