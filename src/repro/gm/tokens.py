"""Send and receive tokens.

GM's host/NIC contract revolves around tokens: the host owns a fixed set
of *send tokens* (returned when a send is fully acknowledged) and loans
the NIC *receive tokens* (preposted host buffers) that arriving messages
consume.  The paper's forwarding design hinges on this vocabulary: an
intermediate NIC *transforms a receive token into a send token* rather
than drawing from the send-token pool, which is what makes forwarding
deadlock-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.memory import RegisteredRegion

__all__ = ["SendToken", "ReceiveToken"]

_token_ids = count()
_msg_ids = count(1)


def next_msg_id() -> int:
    """Globally unique message identifier (sender-assigned)."""
    return next(_msg_ids)


@dataclass
class SendToken:
    """One in-flight send owned by a port.

    ``unacked_packets`` counts packets not yet acknowledged; the engine
    fires ``on_complete`` (set by the API layer) when it reaches zero
    after all packets were sent.
    """

    port_num: int
    dst: int = -1
    dst_port: int = 0
    size: int = 0
    msg_id: int = 0
    unacked_packets: int = 0
    all_packets_sent: bool = False
    region: "RegisteredRegion | None" = None
    token_id: int = field(default_factory=lambda: next(_token_ids))
    context: dict[str, Any] = field(default_factory=dict)

    def arm(self, dst: int, dst_port: int, size: int,
            region: "RegisteredRegion | None" = None) -> None:
        """Prepare the (recycled) token for a new send."""
        self.dst = dst
        self.dst_port = dst_port
        self.size = size
        self.msg_id = next_msg_id()
        self.unacked_packets = 0
        self.all_packets_sent = False
        self.region = region
        self.context = {}

    @property
    def complete(self) -> bool:
        return self.all_packets_sent and self.unacked_packets == 0


@dataclass
class ReceiveToken:
    """One preposted host receive buffer.

    For the paper's forwarding scheme the same object tracks its
    *transformed* life as a forwarding send token: ``forward_children``
    counts children not yet fully acknowledged; the token returns to the
    host only when the message is delivered **and** forwarding completed.
    """

    port_num: int
    size: int = 0
    token_id: int = field(default_factory=lambda: next(_token_ids))
    #: Set while this receive token doubles as a multicast forwarding
    #: send token (receive-token transformation, paper §5).
    transformed: bool = False
    forward_children_unacked: int = 0
    context: dict[str, Any] = field(default_factory=dict)
