"""MPI point-to-point semantics: eager, rendezvous, matching."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import MPIError
from repro.mpi import Communicator


def make_comm(n=4, **cfg):
    return Communicator(Cluster(ClusterConfig(n_nodes=n, **cfg)))


class TestEager:
    def test_send_recv_payload(self):
        comm = make_comm(2)
        out = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 128, tag=7, payload={"x": 1})
            else:
                entry = yield from ctx.recv(source=0, tag=7)
                out["msg"] = entry

        comm.run(program)
        assert out["msg"]["payload"] == {"x": 1}
        assert out["msg"]["size"] == 128
        assert out["msg"]["src_rank"] == 0

    def test_any_source_any_tag(self):
        comm = make_comm(3)
        got = []

        def program(ctx):
            if ctx.rank == 0:
                for _ in range(2):
                    entry = yield from ctx.recv()
                    got.append((entry["src_rank"], entry["tag"]))
            else:
                yield from ctx.send(0, 16, tag=ctx.rank * 10)

        comm.run(program)
        assert sorted(got) == [(1, 10), (2, 20)]

    def test_unexpected_messages_buffered(self):
        comm = make_comm(2)
        order = []

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 8, tag=1, payload="first")
                yield from ctx.send(1, 8, tag=2, payload="second")
            else:
                # Receive in reverse tag order: tag-1 must wait in the
                # unexpected queue while tag-2 is matched.
                yield from ctx.compute(50.0)
                e2 = yield from ctx.recv(source=0, tag=2)
                e1 = yield from ctx.recv(source=0, tag=1)
                order.extend([e2["payload"], e1["payload"]])

        comm.run(program)
        assert order == ["second", "first"]

    def test_ordering_same_tag(self):
        comm = make_comm(2)
        seen = []

        def program(ctx):
            if ctx.rank == 0:
                for k in range(5):
                    yield from ctx.send(1, 8, tag=0, payload=k)
            else:
                for _ in range(5):
                    entry = yield from ctx.recv(source=0, tag=0)
                    seen.append(entry["payload"])

        comm.run(program)
        assert seen == [0, 1, 2, 3, 4]

    def test_self_send_rejected(self):
        comm = make_comm(2)

        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(MPIError):
                    yield from ctx.send(0, 8)
            return
            yield  # pragma: no cover - make it a generator

        comm.run(program, ranks=[0])

    def test_bad_rank_rejected(self):
        comm = make_comm(2)

        def program(ctx):
            with pytest.raises(MPIError):
                yield from ctx.send(9, 8)
            return
            yield  # pragma: no cover

        comm.run(program, ranks=[0])


class TestRendezvous:
    def test_large_message_uses_rendezvous(self):
        comm = make_comm(2)
        out = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 100_000, tag=3, payload="big")
            else:
                entry = yield from ctx.recv(source=0, tag=3)
                out["entry"] = entry

        comm.run(program)
        assert out["entry"]["kind"] == "rdma_data"
        assert out["entry"]["payload"] == "big"

    def test_rendezvous_registration_cleaned_up(self):
        comm = make_comm(2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 50_000)
            else:
                yield from ctx.recv(source=0)

        comm.run(program)
        for node in comm.cluster.nodes:
            assert node.memory.registered_bytes == 0

    def test_threshold_boundary(self):
        # 16287 is still eager; 16288+ would cross toward rendezvous
        # territory (MPICH-GM's eager max).
        comm = make_comm(2)
        kinds = []

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, 16287, tag=1)
                yield from ctx.send(1, 16288, tag=2)
            else:
                e1 = yield from ctx.recv(source=0, tag=1)
                e2 = yield from ctx.recv(source=0, tag=2)
                kinds.extend([e1["kind"], e2["kind"]])

        comm.run(program)
        assert kinds == ["eager", "rdma_data"]

    def test_rendezvous_exchanges_control_messages(self):
        # Rendezvous = RTS + CTS + data: three GM sends for one message
        # (eager posts exactly one).
        def count_sends(size):
            comm = make_comm(2)

            def program(ctx):
                if ctx.rank == 0:
                    yield from ctx.send(1, size)
                else:
                    yield from ctx.recv(source=0)

            comm.run(program)
            return (
                comm.cluster.port(0).sends_posted,
                comm.cluster.port(1).sends_posted,
            )

        assert count_sends(1000) == (1, 0)  # eager
        assert count_sends(40_000) == (2, 1)  # RTS + data; CTS back


class TestCommunicator:
    def test_rank_node_mapping(self):
        cluster = Cluster(ClusterConfig(n_nodes=4))
        comm = Communicator(cluster, node_of_rank=[3, 1, 2, 0])
        assert comm.context(0).node.id == 3
        assert comm.rank_of_node[0] == 3

    def test_duplicate_nodes_rejected(self):
        cluster = Cluster(ClusterConfig(n_nodes=4))
        with pytest.raises(MPIError):
            Communicator(cluster, node_of_rank=[0, 0, 1, 2])

    def test_unknown_node_rejected(self):
        cluster = Cluster(ClusterConfig(n_nodes=2))
        with pytest.raises(MPIError):
            Communicator(cluster, node_of_rank=[0, 5])

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        size=st.sampled_from([0, 1, 4096, 16287, 16288, 40_000]),
        n_msgs=st.integers(min_value=1, max_value=5),
    )
    def test_property_ping_pong_conserves_order(self, size, n_msgs):
        comm = make_comm(2)
        seen = []

        def program(ctx):
            if ctx.rank == 0:
                for k in range(n_msgs):
                    yield from ctx.send(1, size, tag=0, payload=k)
                    yield from ctx.recv(source=1, tag=0)
            else:
                for k in range(n_msgs):
                    entry = yield from ctx.recv(source=0, tag=0)
                    seen.append(entry["payload"])
                    yield from ctx.send(0, 4, tag=0)

        comm.run(program)
        assert seen == list(range(n_msgs))
