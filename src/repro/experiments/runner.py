"""Measurement entry points: thin wrappers over the scenario harness.

Each ``measure_*`` builds the corresponding declarative
:class:`~repro.scenario.spec.ScenarioSpec` point and executes it through
:class:`~repro.scenario.harness.Harness` — the program templates,
round tracking, and the paper's timing methodology all live there (see
that module's docstring).  The wrappers keep the historical call
signatures the tests and benchmarks use; their results are
byte-identical to the pre-scenario imperative harness (locked by
``tests/experiments/test_golden_regression.py``).
"""

from __future__ import annotations

from repro.gm.params import GMCostModel
from repro.scenario.harness import (
    Harness,
    MulticastMeasurement,
    measured_ack_trip,
)
from repro.scenario.spec import (
    MPI_SIZES,
    PAPER_SIZES,
    mpi_bcast_point,
    multicast_point,
    multisend_point,
    unicast_point,
)

__all__ = [
    "MulticastMeasurement",
    "measure_unicast",
    "measure_multisend",
    "measure_gm_multicast",
    "measure_mpi_bcast",
    "measured_ack_trip",
    "PAPER_SIZES",
    "MPI_SIZES",
]

DEFAULT_ITERATIONS = 30
DEFAULT_WARMUP = 5


def measure_unicast(
    cost: GMCostModel | None = None,
    size: int = 0,
    iterations: int = 10,
    seed: int = 0,
) -> float:
    """Mean one-way GM latency (send post → receive event at the host)."""
    spec = unicast_point(cost=cost, size=size, iterations=iterations, seed=seed)
    return Harness(spec).run().values[size]


def measure_multisend(
    n_dest: int,
    size: int,
    scheme: str,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    cost: GMCostModel | None = None,
    seed: int = 0,
) -> float:
    """Fig. 3 metric: mean time from post to the last destination's ack.

    ``scheme``: a registry key (``"nic_multisend"``, ``"host_based"``)
    or the legacy spelling ``"nb"`` / ``"hb"``.
    """
    spec = multisend_point(
        n_dest, size, scheme,
        iterations=iterations, warmup=warmup, cost=cost, seed=seed,
    )
    return Harness(spec).run().values[size]


def measure_gm_multicast(
    n_nodes: int,
    size: int,
    scheme: str,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    cost: GMCostModel | None = None,
    seed: int = 0,
    tree_shape: str | None = None,
) -> MulticastMeasurement:
    """Figs. 5 metric for one (system size, message size, scheme) point.

    ``scheme``: a registry key (``"nic_based"``, ``"host_based"``,
    ``"nic_assisted"``) or the legacy spelling ``"nb"`` / ``"hb"``.
    The spanning tree defaults to the scheme's registered shape
    (optimal for NIC-based, binomial for the host-driven baselines).
    """
    spec = multicast_point(
        n_nodes, size, scheme,
        iterations=iterations, warmup=warmup, cost=cost, seed=seed,
        tree_shape=tree_shape,
    )
    return Harness(spec).run().values[size]


def measure_mpi_bcast(
    n_ranks: int,
    size: int,
    nic: bool,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = DEFAULT_WARMUP,
    cost: GMCostModel | None = None,
    seed: int = 0,
) -> float:
    """Fig. 4 metric: mean broadcast latency at the MPI level.

    One iteration = root's bcast entry to the last rank's bcast exit,
    plus the measured 0-byte unicast for the leaf's acknowledgment (as
    in the GM-level methodology).  Ranks are pre-synchronized with a
    barrier per iteration, mirroring the paper's loop.
    """
    spec = mpi_bcast_point(
        n_ranks, size, nic,
        iterations=iterations, warmup=warmup, cost=cost, seed=seed,
    )
    return Harness(spec).run().values[size]
