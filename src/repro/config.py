"""Cluster configuration."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Any

from repro.errors import ConfigError
from repro.gm.params import GMCostModel
from repro.net.failure import FailureSpec
from repro.net.fault import LossSpec

__all__ = [
    "ClusterConfig",
    "TOPOLOGIES",
    "KNOWN_EXTRAS",
    "register_extra_key",
    "cost_to_dict",
    "cost_from_dict",
]

TOPOLOGIES = ("single", "clos", "line")

#: Cost-model presets a serialized config may name.
COST_PRESETS = ("lanai9", "fast_host", "slow_nic")

#: Keys :attr:`ClusterConfig.extras` is allowed to carry without a
#: warning.  Experiments that consume an extra register its key here (at
#: import time) so that scenario specs fail loudly on typos instead of
#: silently ignoring a misspelled knob.
KNOWN_EXTRAS: set[str] = set()


def register_extra_key(key: str) -> str:
    """Declare *key* a consumed ``extras`` knob (returns it unchanged)."""
    KNOWN_EXTRAS.add(key)
    return key


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build a :class:`~repro.cluster.Cluster`.

    Attributes
    ----------
    n_nodes:
        Number of nodes (each a host + NIC).
    cost:
        Timing constants; defaults to the paper's testbed preset.
    topology:
        ``"single"`` (one crossbar), ``"clos"`` (two-level Clos above 16
        nodes, single switch at or below — Myrinet's default), or
        ``"line"`` (chained switches, for stress tests).
    seed:
        Master RNG seed (skew draws, loss draws, ...).
    trace:
        Record structured trace events (needed by the Fig. 2 experiment).
    prepost_recv_tokens:
        Receive buffers preposted on every port at construction, before
        simulated time starts (the paper's tests assume receivers are
        ready; replenishment during a run pays normal host costs).
    clos_radix:
        Crossbar radix for the Clos builder.
    loss:
        Declarative packet-loss selection (:class:`~repro.net.fault.LossSpec`);
        ``None`` is the perfect network.  The cluster builds a fresh
        model from it, so serialized scenario specs can express the
        Fig. 7-style loss sweeps without an out-of-band ``Cluster(...,
        loss=)`` argument (which still works and takes precedence, for
        non-serializable models such as ``ScriptedLoss``).
    failures:
        Declarative topology-failure schedule
        (:class:`~repro.net.failure.FailureSpec`); ``None`` means links
        and switches stay up.  The cluster builds a
        :class:`~repro.net.failure.FailureInjector` from it at
        construction.
    extras:
        Free-form knobs for experiments.  Keys must be registered via
        :func:`register_extra_key` where they are consumed; unknown keys
        warn at construction so typos surface instead of no-op'ing.
    """

    n_nodes: int = 16
    cost: GMCostModel = field(default_factory=GMCostModel.lanai9)
    topology: str = "clos"
    seed: int = 0
    trace: bool = False
    prepost_recv_tokens: int = 64
    clos_radix: int = 16
    loss: LossSpec | None = None
    failures: FailureSpec | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; pick one of {TOPOLOGIES}"
            )
        if self.prepost_recv_tokens < 0:
            raise ConfigError("prepost_recv_tokens must be >= 0")
        if self.prepost_recv_tokens > self.cost.recv_tokens_per_port:
            raise ConfigError(
                "cannot prepost more receive tokens than the port owns "
                f"({self.prepost_recv_tokens} > {self.cost.recv_tokens_per_port})"
            )
        if self.loss is not None and not isinstance(self.loss, LossSpec):
            raise ConfigError(
                "ClusterConfig.loss takes a declarative LossSpec; pass a "
                "live LossModel via Cluster(config, loss=...) instead"
            )
        if self.failures is not None and not isinstance(
            self.failures, FailureSpec
        ):
            raise ConfigError(
                "ClusterConfig.failures takes a declarative FailureSpec"
            )
        unknown = set(self.extras) - KNOWN_EXTRAS
        if unknown:
            warnings.warn(
                f"unknown ClusterConfig.extras key(s): "
                f"{', '.join(sorted(unknown))} — no experiment consumes "
                "them (register_extra_key declares consumed keys)",
                stacklevel=2,
            )

    # -- serialization (for scenario specs) ---------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict carrying only non-default fields."""
        out: dict[str, Any] = {}
        default = type(self)(n_nodes=self.n_nodes)
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "cost":
                overrides = cost_to_dict(value)
                if overrides:
                    out["cost"] = overrides
            elif f.name in ("loss", "failures"):
                if value is not None:
                    out[f.name] = value.to_dict()
            elif f.name == "n_nodes" or value != getattr(default, f.name):
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClusterConfig":
        if not isinstance(data, dict):
            raise ConfigError(f"cluster config must be an object, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown cluster config keys: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        if "cost" in kwargs and not isinstance(kwargs["cost"], GMCostModel):
            kwargs["cost"] = cost_from_dict(kwargs["cost"])
        if "loss" in kwargs and kwargs["loss"] is not None and not isinstance(
            kwargs["loss"], LossSpec
        ):
            kwargs["loss"] = LossSpec.from_dict(kwargs["loss"])
        if (
            "failures" in kwargs
            and kwargs["failures"] is not None
            and not isinstance(kwargs["failures"], FailureSpec)
        ):
            kwargs["failures"] = FailureSpec.from_dict(kwargs["failures"])
        return cls(**kwargs)


def cost_to_dict(cost: GMCostModel) -> dict[str, Any]:
    """*cost* as overrides relative to the default preset (JSON-ready)."""
    default = GMCostModel()
    return {
        f.name: getattr(cost, f.name)
        for f in fields(GMCostModel)
        if getattr(cost, f.name) != getattr(default, f.name)
    }


def cost_from_dict(data: dict[str, Any]) -> GMCostModel:
    """Build a cost model from ``{"preset": ..., **overrides}``."""
    if not isinstance(data, dict):
        raise ConfigError(f"cost model must be an object, got {data!r}")
    data = dict(data)
    preset = data.pop("preset", "lanai9")
    if preset not in COST_PRESETS:
        raise ConfigError(
            f"unknown cost preset {preset!r}; pick one of {COST_PRESETS}"
        )
    known = {f.name for f in fields(GMCostModel)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown cost model fields: {', '.join(sorted(unknown))}"
        )
    return getattr(GMCostModel, preset)(**data)
