"""Serving-workload benchmark: sustained events/sec through the kernel.

The kernel microbenchmark (:func:`repro.perf.bench_kernel.bench_event_loop`)
pumps distinct-timestamp timeouts — it measures the heap, not the
regime the paper argues about.  This benchmark runs the sustained
serving workload (:mod:`repro.workload`): concurrent multicast groups
with mixed schemes, Poisson arrivals, membership churn — the traffic
shape that hammers same-instant event bursts (fan-out replication) and
retransmit-timer arm/cancel churn, i.e. exactly what Kernel v3's batch
drain and timer wheel optimize.

The workload is pinned (spec + seed), so the processed-event count is
deterministic; only the wall clock varies.  Rates are reported
best-of-N *and* median-of-N — CI gates on the median, the
noise-robust choice on shared runners.
"""

from __future__ import annotations

import gc
import time
from statistics import median
from typing import Any

from repro.perf.counters import KERNEL_COUNTERS

__all__ = [
    "serving_spec",
    "bench_serving",
    "bench_telemetry_overhead",
    "PRE_KERNEL_V3_SERVING",
    "TELEMETRY_OVERHEAD_TOLERANCE",
]

#: Detached telemetry (a ``TelemetrySpec`` declared on the spec with no
#: recorder attached) must stay within this fraction of the baseline
#: median rate — the guard that keeps instrumentation sites one
#: attribute check when nobody is observing.
TELEMETRY_OVERHEAD_TOLERANCE = 0.02

#: The serving benchmark measured on this exact workload under the v2
#: kernel (binary heap only, no timer wheel, no same-instant batch
#: drain), before Kernel v3 landed.  Recorded as a constant so the
#: report can show before/after without keeping the old kernel alive.
#: Measured as the median of six interleaved adjacent-process pairs
#: (v3/v2 alternating, one warmup + best-of-2 per process) on the
#: benchmarking host — the same protocol that produced the v3 numbers
#: in ``BENCH_kernel.json``; ``events`` and ``msgs_delivered`` are
#: deterministic (and byte-identical observables across both kernels:
#: delivered=2714, p99=2916.076 µs).
PRE_KERNEL_V3_SERVING: dict[str, Any] = {
    "events": 458_401,
    "events_per_sec": 267_864,
    "msgs_delivered": 2_714,
}


def serving_spec(smoke: bool = False):
    """The canonical benchmark workload (pinned spec + seed).

    16 nodes, 8 groups of 6 cycling through all four sustained-capable
    schemes, mixed 8 KiB / 32 KiB messages (2–8 MTU packets each, so
    fan-out replication and ack traffic dominate the schedule), and
    membership churn — small enough to run in a couple of seconds,
    busy enough that same-instant bursts and retransmit-timer
    arm/cancel churn dominate the kernel's event mix.
    """
    from repro.scenario import TrafficSpec, serving_point

    return serving_point(
        n_nodes=16,
        traffic=TrafficSpec(
            duration_us=10_000.0 if smoke else 120_000.0,
            n_groups=8,
            group_size=6,
            rate_per_group=1 / 2_000.0,
            sizes=(8_192, 32_768),
            schemes=(
                "nic_based", "nic_multisend", "host_based", "nic_assisted",
            ),
            churn_interval_us=5_000.0,
            warmup_us=2_000.0,
        ),
        seed=11,
        name="bench_serving",
    )


def bench_serving(repeats: int = 3, smoke: bool = False) -> dict[str, Any]:
    """Run the pinned serving workload *repeats* times, report rates.

    One untimed warmup pass faults in code objects first.  The event
    count is identical across passes (the workload is deterministic);
    ``events_per_sec`` is the best pass and ``median_events_per_sec``
    the median — the CI perf gate compares medians.
    """
    import repro.workload  # noqa: F401  (registers the serving runner)
    from repro.scenario import Harness

    def one_pass(spec) -> tuple[Any, int, float]:
        KERNEL_COUNTERS.reset()
        started = time.perf_counter()
        result = Harness(spec).run()
        wall = time.perf_counter() - started
        return result.values[0], KERNEL_COUNTERS.events, wall

    # Full collection first: survivors a previous bench left in the
    # young GC generations make every collection during the timed run
    # re-scan them (measured -25% on this bench after the kernel pump).
    gc.collect()
    one_pass(serving_spec(smoke=True))  # warmup, untimed
    spec = serving_spec(smoke=smoke)
    passes = [one_pass(spec) for _ in range(max(1, repeats))]
    rates = [round(ev / wall) for _, ev, wall in passes if wall > 0]
    stats, events, wall = min(passes, key=lambda p: p[2])
    event_counts = {ev for _, ev, _ in passes}
    if len(event_counts) != 1:
        raise AssertionError(
            f"serving workload is not deterministic: {sorted(event_counts)}"
        )
    before = dict(PRE_KERNEL_V3_SERVING)
    report = {
        "workload": (
            f"{spec.cluster.n_nodes} nodes, "
            f"{spec.traffic.n_groups} groups x {spec.traffic.group_size}, "
            f"{spec.traffic.duration_us:.0f}us, schemes "
            f"{'/'.join(spec.traffic.schemes)}, churn"
        ),
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall) if wall > 0 else None,
        "median_events_per_sec": round(median(rates)) if rates else None,
        "repeat_rates": rates,
        "msgs_posted": stats.msgs_posted,
        "msgs_delivered": stats.msgs_delivered,
        "churn_events": stats.churn_events,
        "p99_delivery_us": round(stats.quantile(0.99), 3),
        "before": before,
    }
    if before["events_per_sec"] and stats.msgs_delivered == before["msgs_delivered"]:
        # Only the full pinned workload is comparable to the committed
        # pre-v3 measurement (the smoke variant runs a shorter spec);
        # the deterministic delivery count is the guard — raw event
        # counts differ across kernels by design (v3 runs fewer,
        # cheaper events for the same schedule).
        report["speedup_vs_pre_kernel_v3"] = round(
            report["median_events_per_sec"] / before["events_per_sec"], 2
        )
    return report


def bench_telemetry_overhead(
    repeats: int = 3, smoke: bool = False
) -> dict[str, Any]:
    """Telemetry cost on the pinned serving workload, three ways.

    * **baseline** — the spec as-is, nothing observing;
    * **detached** — a :class:`~repro.scenario.spec.TelemetrySpec`
      declared on the spec's measurement but no recorder attached.
      Declaring telemetry is pure data, so the run is byte-identical
      (asserted on the deterministic event count) and the best-pass
      rate must stay within :data:`TELEMETRY_OVERHEAD_TOLERANCE` of
      baseline — **this function raises otherwise**;
    * **attached** — a full-sampling flight recorder plus a windowed
      time-series sampler.  Recording costs what it costs; the fraction
      is reported (``attached_overhead``) but never gated.

    Baseline and detached passes are interleaved so slow clock drift on
    a shared runner hits both sets equally.  The gate compares
    best-of-N rates (identical schedules, so any wall-clock spread is
    scheduler noise — the fastest pass of each set is the least noisy
    estimate) against a **self-calibrating allowance**: the tolerance
    plus the baseline set's own internal spread.  The baseline passes
    run the exact same code, so their spread *is* the runner's noise
    floor; a throttled CI box widens its own allowance, while on a
    quiet host the spread is sub-percent and the 2% claim bites.  A
    failing comparison re-measures once before raising.
    """
    import dataclasses

    import repro.workload  # noqa: F401  (registers the serving runner)
    from repro.obs.flight import FlightRecorder
    from repro.obs.registry import MetricsRegistry
    from repro.obs.timeseries import TimeSeriesRecorder
    from repro.scenario import Harness
    from repro.scenario.spec import TelemetrySpec

    spec = serving_spec(smoke=smoke)
    telemetry = TelemetrySpec(sample=1.0, interval_us=1_000.0)
    detached_spec = dataclasses.replace(
        spec,
        measurement=dataclasses.replace(
            spec.measurement, telemetry=telemetry
        ),
    )

    def one_pass(harness: "Any") -> tuple[int, float]:
        KERNEL_COUNTERS.reset()
        started = time.perf_counter()
        harness.run()
        return KERNEL_COUNTERS.events, time.perf_counter() - started

    def interleaved(
        rounds: int,
    ) -> tuple[list[tuple[int, float]], list[tuple[int, float]]]:
        base: list[tuple[int, float]] = []
        det: list[tuple[int, float]] = []
        for _ in range(rounds):
            base.append(one_pass(Harness(spec)))
            det.append(one_pass(Harness(detached_spec)))
        return base, det

    gc.collect()
    one_pass(Harness(serving_spec(smoke=True)))  # warmup, untimed
    base_passes, det_passes = interleaved(max(1, repeats))

    att_passes = []
    for _ in range(max(1, repeats)):
        registry = MetricsRegistry()
        att_passes.append(one_pass(Harness(
            detached_spec,
            registry=registry,
            flight=FlightRecorder(sample=telemetry.sample,
                                  cap=telemetry.cap),
            timeseries=TimeSeriesRecorder(
                registry, interval_us=telemetry.interval_us
            ),
        )))

    def rate(passes: list[tuple[int, float]]) -> int:
        return round(median(ev / wall for ev, wall in passes if wall > 0))

    def best(passes: list[tuple[int, float]]) -> float:
        return max(
            (ev / wall for ev, wall in passes if wall > 0), default=0.0
        )

    def check_events() -> None:
        base_events = {ev for ev, _ in base_passes}
        det_events = {ev for ev, _ in det_passes}
        if base_events != det_events:
            raise AssertionError(
                "declaring telemetry changed the event schedule: "
                f"baseline {sorted(base_events)} vs detached "
                f"{sorted(det_events)}"
            )

    def noise_floor(passes: list[tuple[int, float]]) -> float:
        # The baseline passes run identical schedules, so their own
        # best-to-worst spread is the runner's wall-clock noise.
        rates = [ev / wall for ev, wall in passes if wall > 0]
        return 1.0 - min(rates) / max(rates) if rates else 0.0

    def gate_state() -> tuple[float, float, float]:
        best_base = best(base_passes)
        ratio = best(det_passes) / best_base if best_base else 0.0
        allowed = TELEMETRY_OVERHEAD_TOLERANCE + noise_floor(base_passes)
        return best_base, ratio, allowed

    check_events()
    best_base, detached_ratio, allowed = gate_state()
    if detached_ratio < 1.0 - allowed:
        # One retry: the schedules are identical, so a sub-allowance
        # ratio on the first sample is runner noise until measured
        # twice.  The fresh passes fold into the pool (best-of widens).
        extra_base, extra_det = interleaved(max(1, repeats))
        base_passes += extra_base
        det_passes += extra_det
        check_events()
        best_base, detached_ratio, allowed = gate_state()
    baseline = rate(base_passes)
    detached = rate(det_passes)
    attached = rate(att_passes)
    report = {
        "workload": "pinned bench_serving spec"
        + (" (smoke)" if smoke else ""),
        "repeats": len(base_passes),
        "baseline_events": base_passes[0][0],
        "attached_events": att_passes[0][0],
        "baseline_median_events_per_sec": baseline,
        "detached_median_events_per_sec": detached,
        "attached_median_events_per_sec": attached,
        # Best-of-N basis: identical schedules, so the fastest pass of
        # each set is the least noisy rate estimate.
        "detached_ratio": round(detached_ratio, 4),
        # Attached recording is report-only: it pays for what it keeps.
        "attached_overhead": round(1.0 - attached / baseline, 4)
        if baseline else None,
        "tolerance": TELEMETRY_OVERHEAD_TOLERANCE,
        "noise_floor": round(noise_floor(base_passes), 4),
    }
    if detached_ratio < 1.0 - allowed:
        raise AssertionError(
            f"detached telemetry cost exceeds "
            f"{TELEMETRY_OVERHEAD_TOLERANCE:.0%} + "
            f"{noise_floor(base_passes):.1%} noise floor: best baseline "
            f"{best_base:.0f} vs best detached "
            f"{best(det_passes):.0f} events/s ({detached_ratio:.4f})"
        )
    return report
