"""Unit tests for the tree structure and reference shapes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TreeError
from repro.trees import (
    SpanningTree,
    binomial_tree,
    chain_tree,
    flat_tree,
    kary_tree,
    tree_stats,
)


class TestSpanningTree:
    def test_single_node(self):
        tree = SpanningTree(root=0)
        assert tree.nodes == [0]
        assert tree.max_depth == 0
        assert tree.leaves() == [0]

    def test_parent_child_navigation(self):
        tree = SpanningTree(root=0, children={0: (1, 2), 1: (3,)})
        assert tree.parent_of(3) == 1
        assert tree.parent_of(0) is None
        assert tree.depth_of(3) == 2
        assert sorted(tree.leaves()) == [2, 3]
        assert tree.interior() == [1]

    def test_bfs_order(self):
        tree = SpanningTree(root=0, children={0: (1, 2), 1: (3,), 2: (4,)})
        assert tree.nodes == [0, 1, 2, 3, 4]

    def test_duplicate_child_rejected(self):
        with pytest.raises(TreeError):
            SpanningTree(root=0, children={0: (1, 2), 1: (2,)})

    def test_unreachable_parent_rejected(self):
        with pytest.raises(TreeError):
            SpanningTree(root=0, children={0: (1,), 5: (6,)})

    def test_subtree_nodes(self):
        tree = SpanningTree(root=0, children={0: (1, 2), 1: (3, 4)})
        assert sorted(tree.subtree_nodes(1)) == [1, 3, 4]

    def test_edges(self):
        tree = SpanningTree(root=0, children={0: (1,), 1: (2,)})
        assert sorted(tree.edges()) == [(0, 1), (1, 2)]


class TestFlat:
    def test_shape(self):
        tree = flat_tree(0, [1, 2, 3])
        assert tree.children_of(0) == (1, 2, 3)
        assert tree.max_depth == 1

    def test_root_in_destinations_rejected(self):
        with pytest.raises(TreeError):
            flat_tree(0, [0, 1])

    def test_duplicates_rejected(self):
        with pytest.raises(TreeError):
            flat_tree(0, [1, 1])


class TestChain:
    def test_shape(self):
        tree = chain_tree(0, [1, 2, 3])
        assert tree.max_depth == 3
        assert tree.children_of(1) == (2,)


class TestKary:
    def test_binary(self):
        tree = kary_tree(0, list(range(1, 7)), k=2)
        assert tree.children_of(0) == (1, 2)
        assert tree.children_of(1) == (3, 4)
        assert tree.children_of(2) == (5, 6)

    def test_k1_is_chain(self):
        tree = kary_tree(0, [1, 2, 3], k=1)
        assert tree.max_depth == 3

    def test_bad_k(self):
        with pytest.raises(TreeError):
            kary_tree(0, [1], k=0)

    @given(
        n=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_covers_all(self, n, k):
        tree = kary_tree(0, list(range(1, n + 1)), k=k)
        assert sorted(tree.nodes) == list(range(n + 1))


class TestBinomial:
    def test_size_16_shape(self):
        tree = binomial_tree(0, list(range(1, 16)))
        # Root of a 16-node binomial tree has log2(16) = 4 children.
        assert len(tree.children_of(0)) == 4
        assert tree.max_depth == 4

    def test_size_5(self):
        tree = binomial_tree(0, [1, 2, 3, 4])
        assert sorted(tree.nodes) == [0, 1, 2, 3, 4]
        # relrank 1,2,4 are children of 0; 3 is child of 2.
        assert sorted(tree.children_of(0)) == [1, 2, 4]
        assert tree.children_of(2) == (3,)

    def test_largest_subtree_sent_first(self):
        tree = binomial_tree(0, list(range(1, 16)))
        kids = tree.children_of(0)
        sizes = [len(tree.subtree_nodes(c)) for c in kids]
        assert sizes == sorted(sizes, reverse=True)

    @given(n=st.integers(min_value=1, max_value=100))
    def test_depth_is_floor_log2(self, n):
        # A binomial tree over p nodes has depth floor(log2(p)).
        tree = binomial_tree(0, list(range(1, n + 1)))
        assert tree.max_depth == (n + 1).bit_length() - 1

    @given(n=st.integers(min_value=1, max_value=100))
    def test_covers_all(self, n):
        tree = binomial_tree(0, list(range(1, n + 1)))
        assert sorted(tree.nodes) == list(range(n + 1))

    def test_arbitrary_ids(self):
        tree = binomial_tree(10, [20, 30, 40])
        assert sorted(tree.nodes) == [10, 20, 30, 40]


def test_tree_stats():
    tree = binomial_tree(0, list(range(1, 8)))
    stats = tree_stats(tree)
    assert stats.size == 8
    assert stats.depth == 3
    assert stats.root_fanout == 3
    assert stats.n_leaves + stats.n_forwarders + 1 == 8
