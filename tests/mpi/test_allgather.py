"""Tests for all-to-all broadcast (ring and NIC-based)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator
from repro.net import BernoulliLoss


def run_allgather(n, nic, size=128, rounds=1, loss=None, seed=0):
    cluster = Cluster(ClusterConfig(n_nodes=n, seed=seed), loss=loss)
    comm = Communicator(cluster)
    results = {}

    def program(ctx):
        for r in range(rounds):
            out = yield from ctx.allgather(
                size, value=(ctx.rank, r), nic=nic
            )
            results.setdefault(ctx.rank, []).append(out)

    comm.run(program)
    return results


@pytest.mark.parametrize("nic", [False, True], ids=["ring", "nic"])
def test_every_rank_gets_every_block(nic):
    n = 6
    results = run_allgather(n, nic)
    expected = [(r, 0) for r in range(n)]
    for rank in range(n):
        assert results[rank][0] == expected


@pytest.mark.parametrize("nic", [False, True], ids=["ring", "nic"])
def test_repeated_rounds(nic):
    n = 4
    results = run_allgather(n, nic, rounds=3)
    for rank in range(n):
        for r in range(3):
            assert results[rank][r] == [(q, r) for q in range(n)]


def test_single_rank_degenerate():
    results = run_allgather(1, nic=True)
    assert results[0][0] == [(0, 0)]


def test_nic_allgather_under_loss():
    results = run_allgather(
        5, nic=True, rounds=2, loss=BernoulliLoss(0.08), seed=4
    )
    for rank in range(5):
        assert results[rank][0] == [(q, 0) for q in range(5)]
        assert results[rank][1] == [(q, 1) for q in range(5)]


def test_nic_allgather_faster_steady_state():
    def steady_time(nic, n=12, size=1024):
        cluster = Cluster(ClusterConfig(n_nodes=n))
        comm = Communicator(cluster)
        times = {}

        def program(ctx):
            yield from ctx.allgather(size, value=0, nic=nic)  # warmup
            yield from ctx.barrier()
            t0 = ctx.sim.now
            yield from ctx.allgather(size, value=ctx.rank, nic=nic)
            times[ctx.rank] = ctx.sim.now - t0

        comm.run(program)
        return max(times.values())

    t_ring = steady_time(False)
    t_nic = steady_time(True)
    # n concurrent multicasts beat n-1 serialized ring steps.
    assert t_nic < t_ring


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=2, max_value=8),
    size=st.sampled_from([0, 64, 4096]),
    nic=st.booleans(),
)
def test_property_allgather_correct(n, size, nic):
    results = run_allgather(n, nic, size=size)
    for rank in range(n):
        assert results[rank][0] == [(q, 0) for q in range(n)]
