"""Unit tests for registered-memory accounting."""

import pytest

from repro.errors import RegistrationError
from repro.gm.memory import RegisteredMemory


def test_register_and_deregister():
    mem = RegisteredMemory(owner=0)
    region = mem.register(4096)
    assert mem.registered_bytes == 4096
    mem.deregister(region)
    assert mem.registered_bytes == 0
    assert not region.registered


def test_negative_size_rejected():
    with pytest.raises(RegistrationError):
        RegisteredMemory(0).register(-1)


def test_pinned_region_cannot_deregister():
    # The paper's rule: the host replica stays registered until every
    # child acknowledges.
    mem = RegisteredMemory(0)
    region = mem.register(1024)
    region.pin()
    with pytest.raises(RegistrationError, match="pinned"):
        mem.deregister(region)
    region.unpin()
    mem.deregister(region)


def test_pin_after_deregister_rejected():
    mem = RegisteredMemory(0)
    region = mem.register(8)
    mem.deregister(region)
    with pytest.raises(RegistrationError):
        region.pin()


def test_unpin_underflow_rejected():
    mem = RegisteredMemory(0)
    region = mem.register(8)
    with pytest.raises(RegistrationError):
        region.unpin()


def test_double_deregister_rejected():
    mem = RegisteredMemory(0)
    region = mem.register(8)
    mem.deregister(region)
    with pytest.raises(RegistrationError):
        mem.deregister(region)


def test_registration_limit():
    mem = RegisteredMemory(0, limit_bytes=100)
    mem.register(60)
    with pytest.raises(RegistrationError, match="limit"):
        mem.register(50)


def test_require_checks_ownership():
    mem0, mem1 = RegisteredMemory(0), RegisteredMemory(1)
    region = mem0.register(64)
    mem0.require(region)
    with pytest.raises(RegistrationError):
        mem1.require(region)


def test_require_rejects_deregistered():
    mem = RegisteredMemory(0)
    region = mem.register(64)
    mem.deregister(region)
    with pytest.raises(RegistrationError):
        mem.require(region)


def test_multiple_pins():
    mem = RegisteredMemory(0)
    region = mem.register(16)
    region.pin()
    region.pin()
    region.unpin()
    with pytest.raises(RegistrationError):
        mem.deregister(region)
    region.unpin()
    mem.deregister(region)
