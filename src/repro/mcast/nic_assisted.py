"""The NIC-assisted multidestination scheme (Buntinas et al., CANPC 2000).

The comparison baseline from the paper's Fig. 1: the spanning tree is
carried **with each message** (no preposted group table), the NIC saves
the repeated per-request processing by sending one *multidestination
message* to a list of destinations, but forwarding at intermediate nodes
**requires host involvement** — the host receives the message, reads its
subtree from the header, and re-initiates a multidestination send.

Reliability rides on the ordinary GM unicast machinery: every replica is
a normal DATA packet on its own per-destination connection, with its own
send record, so ACK/timeout/Go-back-N just work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import TokenExhausted
from repro.gm.api import SendHandle
from repro.gm.protocol import SendRecord
from repro.gm.tokens import SendToken
from repro.net.packet import GM_HEADER_BYTES, Packet, PacketType, make_packet, split_message
from repro.nic.descriptor import PacketDescriptor
from repro.nic.lanai import HostCommand, TX_PRIO_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import Cluster
    from repro.host.node import Node
    from repro.trees.base import SpanningTree

__all__ = [
    "MultidestCommand",
    "NicAssistedEngine",
    "nic_assisted_multisend",
    "nic_assisted_multicast",
]


@dataclass
class MultidestCommand(HostCommand):
    """Host → NIC: send one message to an explicit destination list."""

    token: SendToken | None = None
    destinations: tuple[int, ...] = ()


class NicAssistedEngine:
    """NIC-side handler for multidestination sends.

    Reuses the GM engine's connections and records — a replica to
    destination *d* is indistinguishable from a unicast to *d* once on
    the wire, which is exactly how the original scheme worked.
    """

    def __init__(self, node: "Node"):
        self.node = node
        self.nic = node.nic
        self.gm = node.gm
        self.sim = node.sim
        self.cost = node.cost
        self.nic.command_handlers[MultidestCommand] = self._handle_multidest

    def _handle_multidest(self, cmd: MultidestCommand) -> Generator:
        token = cmd.token
        assert token is not None
        # One token translation for the whole multidestination message.
        yield from self.nic.processing(self.cost.nic_send_token_processing)
        chunks = split_message(token.size, self.cost.mtu)
        dests = cmd.destinations
        for idx, payload in enumerate(chunks):
            jobs = []
            for dest in dests:
                conn = self.gm.send_conn(token.port_num, dest, token.dst_port)
                record = SendRecord(
                    seq=conn.alloc_seq(),
                    token=token,
                    chunk=idx,
                    nchunks=len(chunks),
                    payload=payload,
                    msg_size=token.size,
                    dst=dest,
                    dst_port=token.dst_port,
                    local_port=token.port_num,
                )
                conn.window.add(record)
                token.unacked_packets += 1
                jobs.append((conn, record))
            yield from self.nic.processing(self.cost.nic_per_packet_send)
            self.gm.stage(
                lambda jobs=jobs, payload=payload, token=token, idx=idx: (
                    self._stage_chunk(jobs, payload, token, idx)
                )
            )
        token.all_packets_sent = True
        self.gm._maybe_complete(token)

    def _stage_chunk(self, jobs, payload: int, token: SendToken, chunk_idx: int):
        """DMA the chunk once, then chain replicas via the descriptor
        callback — same buffer, rewritten header per destination."""
        buf = yield self.nic.send_buffers.acquire()
        yield from self.nic.dma(payload + GM_HEADER_BYTES)
        (conn, record), rest = jobs[0], jobs[1:]
        pkt = self._packet_for(record, token, chunk_idx)
        record.sent_at = self.sim.now
        conn.timer.arm(record)
        desc = PacketDescriptor(
            pkt,
            buffer=buf,
            on_transmit=self._replica_callback,
            context={"rest": list(rest), "token": token, "chunk": chunk_idx},
        )
        self.nic.queue_tx(desc, TX_PRIO_DATA)

    def _packet_for(self, record: SendRecord, token: SendToken, chunk_idx: int) -> Packet:
        pkt = make_packet(
            PacketType.DATA, self.nic.id, record.dst, self.nic.id,
            port=record.dst_port,
            from_port=record.local_port,
            seq=record.seq,
            msg_id=token.msg_id,
            chunk=record.chunk,
            nchunks=record.nchunks,
            payload=record.payload,
            msg_size=record.msg_size,
        )
        if chunk_idx == 0 and token.context.get("info") is not None:
            pkt.header.info["app"] = token.context["info"]
        return pkt

    def _replica_callback(self, desc: PacketDescriptor):
        rest = desc.context["rest"]
        if not rest:
            if desc.buffer is not None:
                desc.buffer.release()
            return None
        return self._emit_replica(desc, rest)

    def _emit_replica(self, desc: PacketDescriptor, rest) -> Generator:
        yield from self.nic.processing(self.cost.nic_header_rewrite)
        conn, record = rest.pop(0)
        token = desc.context["token"]
        desc.packet = self._packet_for(record, token, desc.context["chunk"])
        record.sent_at = self.sim.now
        conn.timer.arm(record)
        self.nic.queue_tx(desc, TX_PRIO_DATA)


def nic_assisted_multisend(
    node: "Node",
    port,
    destinations: tuple[int, ...],
    size: int,
    info: Any = None,
    caller: Any = None,
) -> Generator[Any, Any, SendHandle]:
    """Host call: one multidestination send (costs one send token)."""
    port._check_owner(caller)
    if not port._free_send_tokens:
        raise TokenExhausted(
            f"port {node.id}:{port.port_num} has no free send tokens"
        )
    token = port._free_send_tokens.pop()
    token.arm(dst=-1, dst_port=port.port_num, size=size)
    if info is not None:
        token.context["info"] = info
    handle = SendHandle(token=token, done=node.sim.event(), posted_at=node.sim.now)
    port._completions[token.token_id] = handle
    port.sends_posted += 1
    yield node.sim.timeout(node.cost.host_send_post)
    node.nic.post_command(
        MultidestCommand(
            port=port.port_num, token=token, destinations=tuple(destinations)
        )
    )
    return handle


def _subtrees(tree: "SpanningTree") -> dict[int, dict]:
    """Serializable child-map for each node (rides in message info)."""
    return {
        node: {c: tree.children_of(c) for c in tree.subtree_nodes(node)}
        for node in tree.nodes
    }


def nic_assisted_multicast(
    cluster: "Cluster", tree: "SpanningTree", size: int
) -> dict[str, Any]:
    """One-shot multicast with the NIC-assisted scheme.

    The engines are created on demand (one per node, idempotent per
    cluster) since this baseline is not part of the default stack.
    """
    for node in cluster.nodes:
        if not hasattr(node, "nic_assisted"):
            node.nic_assisted = NicAssistedEngine(node)

    delivered: dict[int, float] = {}

    def root_prog() -> Generator:
        node = cluster.node(tree.root)
        kids = tree.children_of(tree.root)
        if not kids:
            return
        handle = yield from nic_assisted_multisend(
            node,
            cluster.port(tree.root),
            kids,
            size,
            info={"children": {c: tree.children_of(c) for c in tree.nodes}},
        )
        yield handle.done

    def member_prog(node_id: int) -> Generator:
        node = cluster.node(node_id)
        port = cluster.port(node_id)
        completion = yield from port.receive()
        delivered[node_id] = cluster.sim.now
        children = completion.info["children"].get(node_id, ())
        if children:
            handle = yield from nic_assisted_multisend(
                node, port, tuple(children), size,
                info=completion.info,
            )
            yield handle.done

    procs = [cluster.spawn(root_prog(), name="na_root")]
    for node_id in tree.nodes:
        if node_id != tree.root:
            procs.append(
                cluster.spawn(member_prog(node_id), name=f"na[{node_id}]")
            )
    cluster.run(until=cluster.sim.all_of(procs))
    return {"delivered": delivered}
