"""Unit tests for the simulation engine and event primitives."""

import pytest

from repro.sim import Simulator, SimEvent


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(5.0)
    sim.run(until=t)
    assert sim.now == 5.0


def test_timeout_value_delivered():
    sim = Simulator()
    t = sim.timeout(1.0, value="payload")
    assert sim.run(until=t) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_exactly():
    sim = Simulator()
    fired = []
    sim.timeout(3.0).add_callback(lambda ev: fired.append(sim.now))
    sim.timeout(10.0).add_callback(lambda ev: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == [3.0]
    assert sim.now == 5.0
    sim.run()
    assert fired == [3.0, 10.0]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("nope"))


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_untriggered_event_has_no_value():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.timeout(1.0, value=i).add_callback(lambda ev: order.append(ev.value))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_determinism_across_runs():
    def build_and_run():
        sim = Simulator(seed=42)
        log = []

        def proc(tag, n):
            rng = sim.rng("jitter")
            for _ in range(n):
                yield sim.timeout(rng.uniform(0, 1))
                log.append((round(sim.now, 9), tag))

        sim.process(proc("a", 20))
        sim.process(proc("b", 20))
        sim.run()
        return log

    assert build_and_run() == build_and_run()


def test_rng_streams_independent():
    sim = Simulator(seed=1)
    a1 = [sim.rng("a").random() for _ in range(5)]
    sim2 = Simulator(seed=1)
    # Draw from "b" first: must not perturb "a".
    [sim2.rng("b").random() for _ in range(100)]
    a2 = [sim2.rng("a").random() for _ in range(5)]
    assert a1 == a2


def test_rng_different_seeds_differ():
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_call_at():
    sim = Simulator()
    out = []
    sim.call_at(7.5, lambda: out.append(sim.now))
    sim.run()
    assert out == [7.5]


def test_call_at_past_raises():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_run_until_event_from_other_source():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(3.0).add_callback(lambda _e: ev.succeed("done"))
    assert sim.run(until=ev) == "done"
    assert sim.now == 3.0


def test_run_until_never_triggered_event_raises():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(1.0)
    with pytest.raises(RuntimeError, match="ran out of events"):
        sim.run(until=ev)


def test_run_until_failed_event_raises_its_exception():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(1.0).add_callback(lambda _e: ev.fail(KeyError("boom")))
    with pytest.raises(KeyError):
        sim.run(until=ev)


class TestConditions:
    def test_anyof_first_wins(self):
        sim = Simulator()
        t1 = sim.timeout(1.0, "fast")
        t2 = sim.timeout(2.0, "slow")
        result = sim.run(until=sim.any_of([t1, t2]))
        assert result == {t1: "fast"}
        assert sim.now == 1.0

    def test_allof_waits_for_all(self):
        sim = Simulator()
        t1 = sim.timeout(1.0, "a")
        t2 = sim.timeout(2.0, "b")
        result = sim.run(until=sim.all_of([t1, t2]))
        assert result == {t1: "a", t2: "b"}
        assert sim.now == 2.0

    def test_empty_allof_is_immediate(self):
        sim = Simulator()
        cond = sim.all_of([])
        assert cond.triggered

    def test_or_operator(self):
        sim = Simulator()
        t1 = sim.timeout(1.0)
        t2 = sim.timeout(5.0)
        sim.run(until=t1 | t2)
        assert sim.now == 1.0

    def test_and_operator(self):
        sim = Simulator()
        t1 = sim.timeout(1.0)
        t2 = sim.timeout(5.0)
        sim.run(until=t1 & t2)
        assert sim.now == 5.0

    def test_condition_failure_propagates(self):
        sim = Simulator()
        good = sim.timeout(2.0)
        bad = sim.event()
        sim.timeout(1.0).add_callback(lambda _e: bad.fail(ValueError("x")))
        cond = sim.all_of([good, bad])
        with pytest.raises(ValueError):
            sim.run(until=cond)

    def test_cross_simulator_condition_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        t1, t2 = sim1.timeout(1.0), sim2.timeout(1.0)
        with pytest.raises(ValueError):
            sim1.all_of([t1, t2])
