"""Pluggable reliability engines (the ``ReliabilityEngine`` seam).

The paper's §5 reliability design — cumulative acks retiring a send
window, a per-window timer driving Go-back-N — is one *family* of
reliability protocol.  This package turns the family choice into a
registry, mirroring the multicast scheme registry
(:mod:`repro.mcast.schemes`): each family is a
(:class:`~repro.proto.engines.base.SenderEngine`,
:class:`~repro.proto.engines.base.ReceiverEngine`) class pair registered
under a name, and the transports above (the GM unicast engine, the
multicast reliability component) select a family *by name* and drive it
only through the base-class hooks.

Families shipped here:

``ack_window``
    The paper's protocol: receivers accept strictly in order, ack
    cumulatively on every accept, senders retire records from the ack
    stream and sweep Go-back-N on timeout.  The hooks are pure
    decisions — porting the existing path onto them is byte-identical.
``nack``
    Receiver-detected gaps: receivers accept out of order, report
    missing sequences to the parent on a jittered suppression timer
    (avoiding NACK implosion at high fan-out), and the sender multicasts
    repairs to every laggard child.  Acks become rare (message
    boundaries and duplicates only).
``nack_fec``
    ``nack`` plus sender-emitted XOR parity over ``fec_block``-packet
    groups: a receiver missing exactly one packet of a block
    reconstructs it locally, with no repair round-trip at all.

Layering: engines live *below* the protocol transports.  They may use
:mod:`repro.sim`, :mod:`repro.net`, and :mod:`repro.nic`, and they talk
to their transport only through the duck-typed adapter described in
:mod:`repro.proto.engines.base` — importing :mod:`repro.gm` or
:mod:`repro.mcast` from here is a layering violation
(`tools/check_layering.py` enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EngineFamily",
    "available_engines",
    "get_engine",
    "register_engine",
    "unicast_engines",
    "ReceiverEngine",
    "SenderEngine",
]


@dataclass(frozen=True)
class EngineFamily:
    """Registry entry for one reliability family."""

    name: str
    title: str
    sender_cls: type
    receiver_cls: type
    #: whether the family can drive the GM *unicast* path (the paper's
    #: ack-window protocol is; the multicast-repair families are not)
    unicast: bool = False
    #: default values for every tunable the family understands; a
    #: group's ``reliability_params`` override per key
    defaults: dict[str, Any] = field(default_factory=dict)


_REGISTRY: dict[str, EngineFamily] = {}


def register_engine(family: EngineFamily) -> EngineFamily:
    """Add *family* to the registry (name must be unused)."""
    if family.name in _REGISTRY:
        raise ValueError(
            f"reliability family {family.name!r} already registered"
        )
    _REGISTRY[family.name] = family
    return family


def available_engines() -> tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_REGISTRY))


def unicast_engines() -> tuple[str, ...]:
    """The family names capable of driving GM unicast, sorted."""
    return tuple(
        sorted(name for name, f in _REGISTRY.items() if f.unicast)
    )


def get_engine(name: str) -> EngineFamily:
    """Look up a family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown reliability family {name!r} "
            f"(available: {', '.join(available_engines())})"
        ) from None


# Base classes re-exported for transports and third-party families.
from repro.proto.engines.base import (  # noqa: E402
    ReceiverEngine,
    SenderEngine,
)

# The shipped families register themselves on import.
from repro.proto.engines import ack_window as _ack_window  # noqa: E402,F401
from repro.proto.engines import nack as _nack  # noqa: E402,F401
from repro.proto.engines import nack_fec as _nack_fec  # noqa: E402,F401
