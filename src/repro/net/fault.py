"""Packet-loss injection.

"Though bit error-rates are low in modern networks, they are not zero"
(paper §2) — this module is the synthetic stand-in for those errors.  A
packet failing its CRC is silently dropped by the receiving NIC, which is
exactly how a loss manifests to GM; the reliability layer's ACK/timeout
machinery must recover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ConfigError
from repro.net.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = [
    "LossModel",
    "LossSpec",
    "NoLoss",
    "BernoulliLoss",
    "BitErrorLoss",
    "ScriptedLoss",
    "CompositeLoss",
    "LOSS_KINDS",
]

#: Loss kinds a declarative :class:`LossSpec` can name.  ``ScriptedLoss``
#: and ``CompositeLoss`` carry arbitrary callables/sub-models and are
#: deliberately not serializable — tests construct them directly.
LOSS_KINDS = ("none", "bernoulli", "bit_error")


class LossModel:
    """Decides, per delivery, whether a packet is dropped."""

    def should_drop(self, packet: Packet, now: float) -> bool:
        raise NotImplementedError

    def bind(self, sim: "Simulator") -> None:
        """Attach simulator context (RNG streams).  Default: nothing."""


class NoLoss(LossModel):
    """The perfect network (default)."""

    def should_drop(self, packet: Packet, now: float) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Drop each packet independently with probability *rate*.

    ``kinds`` restricts the loss to specific packet types (e.g. only data,
    or only acks — useful for exercising distinct retransmission paths).

    The RNG normally comes from the simulator's named stream at
    :meth:`bind` time (keeping loss decisions reproducible per seed and
    independent of other random consumers).  ``seed`` provides a private
    fallback RNG for standalone use — sampling a model outside any
    simulator, or before a network binds it; a later ``bind`` replaces
    the fallback with the simulator's stream.
    """

    def __init__(
        self,
        rate: float,
        kinds: Iterable[PacketType] | None = None,
        stream: str = "loss",
        seed: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.stream = stream
        self._rng: random.Random | None = (
            random.Random(seed) if seed is not None else None
        )
        self.dropped = 0

    def bind(self, sim: "Simulator") -> None:
        self._rng = sim.rng(self.stream)

    def should_drop(self, packet: Packet, now: float) -> bool:
        if self._rng is None:
            raise RuntimeError("BernoulliLoss used before bind()")
        if self.kinds is not None and packet.header.ptype not in self.kinds:
            return False
        if self._rng.random() < self.rate:
            self.dropped += 1
            return True
        return False


class BitErrorLoss(BernoulliLoss):
    """Loss derived from a bit-error rate: p(drop) = 1 - (1 - ber)^bits.

    Larger packets are proportionally likelier to be corrupted, which is
    the physically faithful model for the paper's reliability argument.
    """

    def __init__(
        self, ber: float, stream: str = "loss", seed: int | None = None
    ):
        super().__init__(rate=0.0, stream=stream, seed=seed)
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"bit error rate must be in [0, 1), got {ber}")
        self.ber = ber

    def should_drop(self, packet: Packet, now: float) -> bool:
        if self._rng is None:
            raise RuntimeError("BitErrorLoss used before bind()")
        bits = packet.wire_size * 8
        p_drop = 1.0 - (1.0 - self.ber) ** bits
        if self._rng.random() < p_drop:
            self.dropped += 1
            return True
        return False


class ScriptedLoss(LossModel):
    """Deterministic drops chosen by a predicate, each at most *times* times.

    The workhorse for protocol tests: "drop the first transmission of
    seq 3 from node 0 to node 5, then let the retransmit through".
    """

    def __init__(self, predicate: Callable[[Packet], bool], times: int = 1):
        self.predicate = predicate
        self.times = times
        self.dropped = 0

    def should_drop(self, packet: Packet, now: float) -> bool:
        if self.dropped >= self.times:
            return False
        if self.predicate(packet):
            self.dropped += 1
            return True
        return False


class CompositeLoss(LossModel):
    """Drop if *any* sub-model says drop."""

    def __init__(self, models: Iterable[LossModel]):
        self.models = list(models)

    def bind(self, sim: "Simulator") -> None:
        for m in self.models:
            m.bind(sim)

    def should_drop(self, packet: Packet, now: float) -> bool:
        # Evaluate all (no short-circuit) so RNG streams stay aligned.
        return any([m.should_drop(packet, now) for m in self.models])


@dataclass(frozen=True)
class LossSpec:
    """Declarative, JSON-serializable selection of a :class:`LossModel`.

    This is the form scenario specs and :class:`~repro.config.ClusterConfig`
    carry (a live model holds an RNG and drop counters, so it cannot be
    frozen into a config); :meth:`build` instantiates a fresh model per
    cluster.  ``packet_types`` restricts a Bernoulli loss to the named
    :class:`~repro.net.packet.PacketType` members (e.g. ``["MCAST_DATA"]``).
    """

    kind: str = "none"
    rate: float = 0.0  #: per-packet drop probability (``bernoulli``)
    ber: float = 0.0  #: bit error rate (``bit_error``)
    packet_types: tuple[str, ...] | None = None
    stream: str = "loss"

    def __post_init__(self) -> None:
        if self.kind not in LOSS_KINDS:
            raise ConfigError(
                f"unknown loss kind {self.kind!r}; pick one of {LOSS_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"loss rate must be in [0, 1], got {self.rate}")
        if not 0.0 <= self.ber < 1.0:
            raise ConfigError(f"bit error rate must be in [0, 1), got {self.ber}")
        if self.packet_types is not None:
            object.__setattr__(
                self, "packet_types", tuple(self.packet_types)
            )
            for name in self.packet_types:
                if name not in PacketType.__members__:
                    raise ConfigError(
                        f"unknown packet type {name!r} in loss spec "
                        f"(known: {', '.join(PacketType.__members__)})"
                    )

    def build(self) -> LossModel | None:
        """A fresh loss model (``None`` for the perfect network)."""
        if self.kind == "none":
            return None
        if self.kind == "bernoulli":
            kinds = (
                [PacketType[name] for name in self.packet_types]
                if self.packet_types is not None
                else None
            )
            return BernoulliLoss(self.rate, kinds=kinds, stream=self.stream)
        return BitErrorLoss(self.ber, stream=self.stream)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        if self.kind == "bernoulli":
            out["rate"] = self.rate
            if self.packet_types is not None:
                out["packet_types"] = list(self.packet_types)
        elif self.kind == "bit_error":
            out["ber"] = self.ber
        if self.stream != "loss":
            out["stream"] = self.stream
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LossSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"loss spec must be an object, got {data!r}")
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ConfigError(
                f"unknown loss spec keys: {', '.join(sorted(unknown))}"
            )
        if "packet_types" in data and data["packet_types"] is not None:
            data = dict(data, packet_types=tuple(data["packet_types"]))
        return cls(**data)
