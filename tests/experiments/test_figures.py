"""Smoke tests for the figure modules (quick mode) and the CLI."""

import pytest

from repro.experiments import FIGURES
from repro.experiments.cli import main, run_figure


def test_figures_registry_complete():
    assert set(FIGURES) == {f"fig{i}" for i in range(1, 10)}


def test_fig1_runs():
    result = run_figure("fig1", quick=True)
    assert result.headlines["probes passing (of 4)"] == 4.0
    assert "table" in result.extra


def test_fig2_runs():
    result = run_figure("fig2", quick=True)
    assert (
        result.headlines["NB mean inter-replica gap (header rewrite)"]
        < result.headlines["HB mean inter-replica gap (request processing)"]
    )


def test_fig3_quick_shape():
    from repro.experiments import fig3

    result = fig3.run(quick=True, sizes=[1, 16384])
    factor = result.get("factor-4dest")
    assert factor.y_at(1) > 1.5
    assert 0.8 < factor.y_at(16384) < 1.2


def test_fig5_quick_shape():
    from repro.experiments import fig5

    result = fig5.run(quick=True, sizes=[1, 4096], node_counts=(4, 16))
    assert result.get("factor-16").y_at(1) > result.get("factor-4").y_at(1)


def test_cli_requires_target(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_runs_figure_and_writes_output(tmp_path, capsys):
    out = tmp_path / "results.md"
    rc = main(["--figure", "fig1", "-o", str(out)])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "fig1" in captured
    assert out.exists()
    assert "Feature-axes" in out.read_text()
