"""Unit tests for packets, headers, and message segmentation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    GM_HEADER_BYTES,
    GM_MTU_PAYLOAD,
    Packet,
    PacketHeader,
    PacketType,
    split_message,
)


def make_packet(**over):
    fields = dict(
        ptype=PacketType.DATA, src=0, dst=1, origin=0, seq=7, payload=100
    )
    fields.update(over)
    return Packet(header=PacketHeader(**fields))


def test_wire_size_includes_header():
    pkt = make_packet(payload=100)
    assert pkt.wire_size == 100 + GM_HEADER_BYTES


def test_uids_unique():
    assert make_packet().uid != make_packet().uid


def test_clone_gets_new_uid_and_overrides():
    pkt = make_packet(dst=1, seq=3)
    copy = pkt.clone(dst=5)
    assert copy.uid != pkt.uid
    assert copy.dst == 5
    assert copy.header.seq == 3
    assert pkt.dst == 1  # original untouched


def test_clone_info_is_independent():
    pkt = make_packet()
    pkt.header.info["credits"] = 4
    copy = pkt.clone()
    copy.header.info["credits"] = 9
    assert pkt.header.info["credits"] == 4


def test_describe_is_readable():
    text = make_packet(group=2, seq=11).describe()
    assert "grp=2" in text and "seq=11" in text


def test_ptype_is_data():
    assert PacketType.DATA.is_data
    assert PacketType.MCAST_DATA.is_data
    assert not PacketType.ACK.is_data
    assert not PacketType.CREDIT.is_data


class TestSplitMessage:
    def test_zero_byte_message_is_one_packet(self):
        assert split_message(0) == [0]

    def test_small_message_single_packet(self):
        assert split_message(100) == [100]

    def test_exact_mtu(self):
        assert split_message(GM_MTU_PAYLOAD) == [GM_MTU_PAYLOAD]

    def test_mtu_plus_one(self):
        assert split_message(GM_MTU_PAYLOAD + 1) == [GM_MTU_PAYLOAD, 1]

    def test_16kb_is_four_packets(self):
        assert split_message(16384) == [4096, 4096, 4096, 4096]

    def test_paper_eager_limit(self):
        # 16287 bytes: the largest MPICH-GM eager message.
        chunks = split_message(16287)
        assert chunks == [4096, 4096, 4096, 3999]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            split_message(-1)

    def test_bad_mtu_rejected(self):
        with pytest.raises(ValueError):
            split_message(10, mtu=0)

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_chunks_sum_to_size(self, size):
        chunks = split_message(size)
        assert sum(chunks) == size
        assert all(0 <= c <= GM_MTU_PAYLOAD for c in chunks)
        # Only the last chunk may be partial.
        assert all(c == GM_MTU_PAYLOAD for c in chunks[:-1])

    @given(
        st.integers(min_value=1, max_value=1 << 18),
        st.integers(min_value=1, max_value=9000),
    )
    def test_chunk_count_matches_ceiling(self, size, mtu):
        chunks = split_message(size, mtu=mtu)
        assert len(chunks) == -(-size // mtu)
