"""Bounded NIC SRAM packet-buffer pools.

"The NIC receive buffer is a limited resource, and holding on to one or
more receive buffers will slow down the receiver or even block the
network" (paper §5) — so buffers are first-class objects with explicit
acquire/release and occupancy statistics, and the receive path can *fail*
to get one (packet dropped, recovered by retransmission).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = ["SRAMBuffer", "BufferPool"]


class SRAMBuffer:
    """One MTU-sized packet buffer in NIC SRAM."""

    __slots__ = ("pool", "index", "in_use")

    def __init__(self, pool: "BufferPool", index: int):
        self.pool = pool
        self.index = index
        self.in_use = False

    def release(self) -> None:
        self.pool.release(self)

    def __repr__(self) -> str:
        state = "busy" if self.in_use else "free"
        return f"<SRAMBuffer {self.pool.name}[{self.index}] {state}>"


class BufferPool:
    """A fixed set of SRAM buffers with blocking and non-blocking acquire."""

    def __init__(self, sim: "Simulator", size: int, name: str = "pool"):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.sim = sim
        self.size = size
        self.name = name
        self._free: list[SRAMBuffer] = [SRAMBuffer(self, i) for i in range(size)]
        self._waiters: list[SimEvent] = []
        #: How many acquires found the pool empty (overrun statistics).
        self.misses = 0
        #: High-water mark of simultaneous occupancy.
        self.max_in_use = 0

    @property
    def free(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.size - len(self._free)

    def try_acquire(self) -> SRAMBuffer | None:
        """Take a buffer now, or ``None`` if the pool is empty.

        Used on the wire-receive path, where a NIC with no free buffer
        simply cannot latch the incoming packet.
        """
        if not self._free:
            self.misses += 1
            return None
        buf = self._free.pop()
        buf.in_use = True
        self.max_in_use = max(self.max_in_use, self.in_use)
        return buf

    def acquire(self) -> SimEvent:
        """An event that succeeds with a buffer (FIFO among waiters).

        Unlike :meth:`try_acquire`, waiting here is not counted as an
        overrun miss — the send path tolerates waiting, the receive path
        does not.
        """
        ev = self.sim.event(name=f"{self.name}.acquire")
        if self._free and not self._waiters:
            buf = self._free.pop()
            buf.in_use = True
            self.max_in_use = max(self.max_in_use, self.in_use)
            ev.succeed(buf)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, buf: SRAMBuffer) -> None:
        if buf.pool is not self:
            raise ValueError("buffer belongs to a different pool")
        if not buf.in_use:
            raise RuntimeError(f"double release of {buf!r}")
        buf.in_use = False
        if self._waiters:
            waiter = self._waiters.pop(0)
            buf.in_use = True
            waiter.succeed(buf)
        else:
            self._free.append(buf)

    def __repr__(self) -> str:
        return f"<BufferPool {self.name} {self.free}/{self.size} free>"
