#!/usr/bin/env python3
"""Reliability demo: multicast over a lossy network.

Injects deterministic and random packet loss and shows the per-group
reliability machinery (per-child ack arrays, selective Go-back-N from
registered host memory) recovering — every destination still gets every
message, exactly once and in order.

Run:  python examples/reliable_multicast.py
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast.manager import install_group, next_group_id, nic_based_multicast
from repro.net import BernoulliLoss, PacketType, ScriptedLoss
from repro.trees import build_tree


def scripted_loss_demo() -> None:
    print("--- scripted loss: drop the first data packet to node 2 ---")
    loss = ScriptedLoss(
        lambda p: p.header.ptype is PacketType.MCAST_DATA and p.header.dst == 2
    )
    cluster = Cluster(ClusterConfig(n_nodes=4, trace=True), loss=loss)
    tree = build_tree(0, [1, 2, 3], shape="chain")
    gid = next_group_id()
    install_group(cluster, gid, tree)
    delivered = {}

    def root():
        handle = yield from nic_based_multicast(cluster, gid, 512, 0)
        yield handle.done

    def rx(i):
        completion = yield from cluster.port(i).receive()
        delivered[i] = (cluster.now, completion.msg_id)

    procs = [cluster.spawn(root())] + [cluster.spawn(rx(i)) for i in (1, 2, 3)]
    cluster.run(until=cluster.sim.all_of(procs))

    for rec in cluster.sim.trace.filter(category="pkt_drop"):
        print(f"  t={rec.time:8.2f}  DROPPED {rec['ptype']} "
              f"{rec['src']}->{rec['dst']} seq={rec['seq']}")
    for rec in cluster.sim.trace.filter(category="mcast_timeout"):
        print(f"  t={rec.time:8.2f}  node timeout, unacked children: "
              f"{rec['unacked']}")
    for rec in cluster.sim.trace.filter(category="mcast_retransmit"):
        print(f"  t={rec.time:8.2f}  retransmit seq={rec['seq']} "
              f"-> child {rec['child']} (attempt {rec['attempt']})")
    for node, (t, msg) in sorted(delivered.items()):
        print(f"  node {node}: delivered msg {msg} at t={t:.2f} us")
    print()


def random_loss_demo() -> None:
    print("--- random loss: 15% of all packets, 10 multicasts ---")
    cluster = Cluster(
        ClusterConfig(n_nodes=6, seed=7), loss=BernoulliLoss(0.15)
    )
    tree = build_tree(0, range(1, 6), shape="optimal",
                      cost=cluster.cost, size=256)
    gid = next_group_id()
    install_group(cluster, gid, tree)
    received = {i: [] for i in range(1, 6)}

    def root():
        for k in range(10):
            yield from nic_based_multicast(cluster, gid, 256 + k, 0)

    def rx(i):
        port = cluster.port(i)
        for _ in range(10):
            completion = yield from port.receive()
            received[i].append(completion.size)
            yield from port.provide_receive_buffer()

    procs = [cluster.spawn(root())] + [cluster.spawn(rx(i)) for i in range(1, 6)]
    cluster.run(until=cluster.sim.all_of(procs))
    cluster.run()  # drain every straggling ack/timer

    retrans = sum(n.mcast.retransmissions for n in cluster.nodes)
    print(f"  network drops: {cluster.network.dropped}, "
          f"retransmissions: {retrans}")
    for i in range(1, 6):
        in_order = received[i] == [256 + k for k in range(10)]
        print(f"  node {i}: {len(received[i])}/10 messages, "
              f"in order: {in_order}")
    held = sum(len(s.held) for n in cluster.nodes
               for s in n.mcast.table._groups.values())
    print(f"  leaked forwarding state after drain: {held} (must be 0)")


if __name__ == "__main__":
    scripted_loss_demo()
    random_loss_demo()
