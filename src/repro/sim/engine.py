"""The simulation engine: clock, event heap, and run loop.

Kernel v2: the heap holds two kinds of entries — :class:`SimEvent`
objects and :class:`_Callback` cells (raw callables recycled through a
freelist).  Timers that only need to run a function (``call_at``,
``Link.hold_for``, retransmission timers) go through
:meth:`Simulator.schedule_callback` and never allocate an event; the run
loops are fused (hoisted heap/locals, batched counter updates) so the
per-event cost is one heap pop plus the callbacks themselves.
"""

from __future__ import annotations

import heapq
from functools import partial
from itertools import count
from typing import Any, Callable, Generator

from repro.perf.counters import KERNEL_COUNTERS
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = ["Simulator", "URGENT", "NORMAL", "set_default_metrics"]

#: Priority for internal immediate resumptions (processed before NORMAL
#: events scheduled at the same instant).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Registry adopted by simulators created after :func:`set_default_metrics`.
#: ``None`` (the default) keeps all instrumentation down to one attribute
#: check per site.  The slot is duck-typed on purpose: the kernel never
#: imports :mod:`repro.obs` — observers push a registry down, either here
#: or by assigning ``sim.metrics`` directly.
_DEFAULT_METRICS: Any = None


def set_default_metrics(registry: Any) -> Any:
    """Set the registry future simulators attach to; returns the old one.

    For harnesses that build clusters internally (the experiment
    runner's ``--metrics`` flag).  Pass ``None`` to restore the
    unobserved default.
    """
    global _DEFAULT_METRICS
    previous = _DEFAULT_METRICS
    _DEFAULT_METRICS = registry
    return previous


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class _Callback:
    """A heap cell carrying a bare callable — no event machinery.

    Cells are recycled through the simulator's freelist: after the run
    loop invokes ``fn`` the cell goes back on the freelist, so a
    steady-state run (packet hops, NIC holds, retransmission timers)
    schedules timers with zero allocation beyond the heap tuple.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None] | None = None):
        self.fn = fn


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a ``float`` in *microseconds* throughout this project (all cost
    models are expressed in µs and bytes/µs).

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :meth:`rng`).
    trace:
        If true, record :class:`~repro.sim.trace.TraceRecord` entries for
        component events (components call :meth:`record`).
    """

    def __init__(self, seed: int = 0, trace: bool = False):
        self._heap: list[tuple[float, int, int, Any]] = []
        self._now: float = 0.0
        self._seq = count()
        self._cb_freelist: list[_Callback] = []
        self._rngs = RngRegistry(seed)
        self.seed = seed
        self.trace = Tracer(enabled=trace)
        #: Metrics registry (duck-typed; see :func:`set_default_metrics`).
        #: ``None`` disables all instrumentation.
        self.metrics = _DEFAULT_METRICS
        #: Events processed by :meth:`step`/:meth:`run` over this
        #: simulator's lifetime.
        self.events_processed = 0
        # Shadow the `timeout` method with a C-level partial: one Timeout
        # is created per modelled wait, and the pure-Python wrapper frame
        # was ~10% of kernel microbenchmark time.
        self.timeout = partial(Timeout, self)
        KERNEL_COUNTERS.simulators += 1

    # -- clock & introspection -------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.3f}us queued={len(self._heap)}>"

    # -- event factories ---------------------------------------------------
    def event(self, name: str | None = None) -> SimEvent:
        """Create a fresh, untriggered event."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` µs from now.

        (Shadowed per instance by a ``partial(Timeout, self)`` in
        ``__init__``; this definition documents the signature and serves
        unpickled/copied instances.)
        """
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[SimEvent, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start driving *generator* as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: list[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def rng(self, name: str):
        """A named, deterministic ``random.Random`` stream."""
        return self._rngs.get(name)

    def record(self, component: str, category: str, **fields: Any) -> None:
        """Append a trace record at the current time (no-op if disabled)."""
        if self.trace.enabled:
            self.trace.record(self._now, component, category, fields)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def schedule_callback(
        self, when: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> None:
        """Run bare ``fn()`` at absolute time *when* (>= now).

        The allocation-free timer primitive: no :class:`SimEvent`, no
        callback list — just a recycled :class:`_Callback` cell on the
        heap.  Use it for fire-and-forget work (resource releases,
        retransmission timers); use :meth:`event`/:meth:`timeout` when
        something needs to *wait* on the result.
        """
        if when < self._now:
            raise ValueError(
                f"schedule_callback({when}) is in the past (now={self._now})"
            )
        freelist = self._cb_freelist
        if freelist:
            cell = freelist.pop()
            cell.fn = fn
        else:
            cell = _Callback(fn)
        heapq.heappush(self._heap, (when, priority, next(self._seq), cell))

    def call_at(
        self, when: float, fn: Callable[[], None], *, priority: int = NORMAL
    ) -> None:
        """Run ``fn()`` at absolute time *when* (>= now)."""
        self.schedule_callback(when, fn, priority)

    # -- run loop ----------------------------------------------------------
    def step(self) -> None:
        """Process one event from the queue."""
        if not self._heap:
            raise EmptySchedule
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        KERNEL_COUNTERS.events += 1
        if event.__class__ is _Callback:
            fn = event.fn
            event.fn = None
            self._cb_freelist.append(event)
            fn()
            return
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for cb in callbacks:
            cb(event)

    def run(self, until: float | SimEvent | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a ``float`` — run until simulated time reaches that instant;
        * a :class:`SimEvent` — run until that event is processed, and
          return its value (raising its exception if it failed).

        All three loops are fused: heap and helpers are hoisted into
        locals and the lifetime counters are updated once per run, not
        once per event.
        """
        heap = self._heap
        pop = heapq.heappop
        cb_cls = _Callback
        freelist = self._cb_freelist
        n = 0

        if until is None:
            try:
                while heap:
                    when, _p, _s, event = pop(heap)
                    self._now = when
                    n += 1
                    if event.__class__ is cb_cls:
                        fn = event.fn
                        event.fn = None
                        freelist.append(event)
                        fn()
                        continue
                    callbacks, event.callbacks = event.callbacks, None
                    for cb in callbacks:
                        cb(event)
            finally:
                self.events_processed += n
                KERNEL_COUNTERS.events += n
            return None

        if isinstance(until, SimEvent):
            stop = until
            if stop.processed:
                if not stop.ok:
                    raise stop.value
                return stop.value
            flag: list[bool] = []
            stop.add_callback(lambda _ev: flag.append(True))
            try:
                while not flag:
                    if not heap:
                        raise RuntimeError(
                            f"simulation ran out of events before {stop!r} "
                            "triggered"
                        )
                    when, _p, _s, event = pop(heap)
                    self._now = when
                    n += 1
                    if event.__class__ is cb_cls:
                        fn = event.fn
                        event.fn = None
                        freelist.append(event)
                        fn()
                        continue
                    callbacks, event.callbacks = event.callbacks, None
                    for cb in callbacks:
                        cb(event)
            finally:
                self.events_processed += n
                KERNEL_COUNTERS.events += n
            if not stop.ok:
                raise stop.value
            return stop.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"run(until={horizon}) is in the past")
        try:
            while heap and heap[0][0] <= horizon:
                when, _p, _s, event = pop(heap)
                self._now = when
                n += 1
                if event.__class__ is cb_cls:
                    fn = event.fn
                    event.fn = None
                    freelist.append(event)
                    fn()
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
        finally:
            self.events_processed += n
            KERNEL_COUNTERS.events += n
        self._now = max(self._now, horizon)
        return None
