"""Integration tests: GM unicast over the full simulated stack."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ProtectionError, TokenExhausted
from repro.gm.params import GMCostModel


def make_cluster(n=4, **cfg):
    return Cluster(ClusterConfig(n_nodes=n, **cfg))


def send_and_wait(cluster, src, dst, size):
    """Run one send to completion; return (send_done_t, recv_t)."""
    result = {}

    def sender(node):
        port = cluster.port(src)
        handle = yield from port.send(dst, size)
        yield handle.done
        result["send_done"] = cluster.now

    def receiver(node):
        port = cluster.port(dst)
        completion = yield from port.receive()
        result["recv"] = cluster.now
        result["completion"] = completion

    s = cluster.spawn(sender(cluster.node(src)))
    r = cluster.spawn(receiver(cluster.node(dst)))
    cluster.run(until=s & r)
    return result


class TestBasicDelivery:
    def test_small_message_delivered(self):
        result = send_and_wait(make_cluster(), 0, 1, 64)
        assert result["completion"].src == 0
        assert result["completion"].size == 64

    def test_zero_byte_message(self):
        result = send_and_wait(make_cluster(), 0, 1, 0)
        assert result["completion"].size == 0

    def test_multi_packet_message(self):
        result = send_and_wait(make_cluster(), 0, 1, 16384)
        assert result["completion"].size == 16384

    def test_small_latency_in_calibrated_regime(self):
        # GM small-message one-way latency on the paper's hardware was
        # ~7us; require the simulated stack to land in the same regime.
        result = send_and_wait(make_cluster(), 0, 1, 4)
        assert 4.0 < result["recv"] < 12.0

    def test_send_completion_after_receive_starts(self):
        # The ack comes back after delivery, so the sender completes
        # after the receiver got the data (minus host dispatch jitter).
        result = send_and_wait(make_cluster(), 0, 1, 1024)
        assert result["send_done"] > 0

    def test_bandwidth_dominates_large_messages(self):
        r_small = send_and_wait(make_cluster(), 0, 1, 4096)
        r_large = send_and_wait(make_cluster(), 0, 1, 65536)
        # 64 KB is 16 packets; time ratio should be roughly linear in
        # size for the streaming part.
        assert r_large["recv"] > 3 * r_small["recv"]

    def test_distinct_pairs_in_parallel(self):
        cluster = make_cluster(6)
        times = {}

        def sender(i, j):
            port = cluster.port(i)
            handle = yield from port.send(j, 1024)
            yield handle.done

        def receiver(j):
            port = cluster.port(j)
            yield from port.receive()
            times[j] = cluster.now

        procs = []
        for i, j in [(0, 1), (2, 3), (4, 5)]:
            procs.append(cluster.spawn(sender(i, j)))
            procs.append(cluster.spawn(receiver(j)))
        cluster.run(until=cluster.sim.all_of(procs))
        spread = max(times.values()) - min(times.values())
        assert spread < 0.5  # effectively simultaneous


class TestOrderingSemantics:
    def test_messages_from_one_sender_arrive_in_order(self):
        cluster = make_cluster()
        received = []

        def sender():
            port = cluster.port(0)
            for k in range(10):
                handle = yield from port.send(1, 64 + k)
                del handle  # fire-and-forget; ordering is the NIC's job

        def receiver():
            port = cluster.port(1)
            for _ in range(10):
                completion = yield from port.receive()
                received.append(completion.size)

        s = cluster.spawn(sender())
        r = cluster.spawn(receiver())
        cluster.run(until=s & r)
        assert received == [64 + k for k in range(10)]

    def test_interleaved_sizes_in_order(self):
        cluster = make_cluster()
        received = []

        def sender():
            port = cluster.port(0)
            for size in [10000, 4, 8192, 1]:
                yield from port.send(1, size)

        def receiver():
            port = cluster.port(1)
            for _ in range(4):
                completion = yield from port.receive()
                received.append(completion.size)

        s = cluster.spawn(sender())
        r = cluster.spawn(receiver())
        cluster.run(until=s & r)
        assert received == [10000, 4, 8192, 1]


class TestTokens:
    def test_send_token_exhaustion_raises(self):
        cost = GMCostModel(send_tokens_per_port=2)
        cluster = Cluster(ClusterConfig(n_nodes=2, cost=cost))
        errors = []

        def sender():
            port = cluster.port(0)
            try:
                for _ in range(3):
                    yield from port.send(1, 8)
            except TokenExhausted as exc:
                errors.append(exc)

        cluster.spawn(sender())
        cluster.run()
        assert len(errors) == 1

    def test_tokens_recycle_after_completion(self):
        cost = GMCostModel(send_tokens_per_port=1)
        cluster = Cluster(ClusterConfig(n_nodes=2, cost=cost))
        sizes = []

        def sender():
            port = cluster.port(0)
            for k in range(5):
                handle = yield from port.send(1, 100 + k)
                yield handle.done  # wait, freeing the single token

        def receiver():
            port = cluster.port(1)
            for _ in range(5):
                completion = yield from port.receive()
                sizes.append(completion.size)

        s = cluster.spawn(sender())
        r = cluster.spawn(receiver())
        cluster.run(until=s & r)
        assert sizes == [100, 101, 102, 103, 104]

    def test_no_recv_token_recovers_via_retransmit(self):
        cluster = Cluster(
            ClusterConfig(n_nodes=2, prepost_recv_tokens=0)
        )
        got = []

        def sender():
            port = cluster.port(0)
            handle = yield from port.send(1, 32)
            yield handle.done

        def receiver():
            port = cluster.port(1)
            # Post the buffer only after the first attempt was dropped.
            yield cluster.sim.timeout(cluster.cost.ack_timeout / 2)
            yield from port.provide_receive_buffer()
            completion = yield from port.receive()
            got.append(completion.size)

        s = cluster.spawn(sender())
        r = cluster.spawn(receiver())
        cluster.run(until=s & r)
        assert got == [32]
        assert cluster.node(1).gm.no_token_dropped >= 1
        assert cluster.node(0).gm.retransmissions >= 1


class TestProtection:
    def test_wrong_owner_rejected_on_send(self):
        cluster = make_cluster(2)
        intruder = object()
        port = cluster.port(0)
        with pytest.raises(ProtectionError):
            # Driving the generator far enough to hit the check.
            gen = port.send(1, 8, caller=intruder)
            next(gen)

    def test_wrong_owner_rejected_on_receive(self):
        cluster = make_cluster(2)
        port = cluster.port(0)
        with pytest.raises(ProtectionError):
            next(port.receive(caller=object()))

    def test_owner_allowed_explicitly(self):
        cluster = make_cluster(2)
        port = cluster.port(0)
        owner = cluster.node(0).host

        def sender():
            yield from port.send(1, 8, caller=owner)

        cluster.spawn(sender())
        cluster.run()

    def test_two_ports_on_one_nic_isolated(self):
        cluster = make_cluster(2)
        owner_a, owner_b = object(), object()
        port_a = cluster.node(0).open_port(1, owner=owner_a)
        cluster.node(0).open_port(2, owner=owner_b)
        with pytest.raises(ProtectionError):
            next(port_a.send(1, 8, caller=owner_b))


class TestNonMulticastIsolation:
    def test_unicast_latency_unaffected_by_open_groups(self):
        # Paper §6.1: the multicast modifications have "no noticeable
        # impact on the performance of non-multicast communications".
        # Here: an idle second port and preposted state do not perturb
        # unicast latency.
        base = send_and_wait(make_cluster(), 0, 1, 1024)["recv"]
        cluster = make_cluster()
        cluster.node(0).open_port(3, owner=object())
        result = {}

        def sender():
            port = cluster.port(0)
            yield from port.send(1, 1024)

        def receiver():
            port = cluster.port(1)
            yield from port.receive()
            result["recv"] = cluster.now

        s = cluster.spawn(sender())
        r = cluster.spawn(receiver())
        cluster.run(until=s & r)
        assert result["recv"] == pytest.approx(base)
