"""Latency-optimal trees in the postal model (Bar-Noy & Kipnis).

The paper (§5, "The Spanning Tree"): *"The basic idea of constructing an
optimal tree is to have the maximum number of nodes involved in sending
at any time ... a node will send to as many destinations as possible
before the first destination it sent to becomes ready to send out data to
its own children.  We compute the number of destinations a sender can
send to before its first receiver can start sending as the ratio of (a)
the total amount of time for a node to send a message until the receiver
receives it, and (b) the average time for the sender to send a message to
one additional destination."*

We implement the postal model with three parameters:

* ``gap``      — (b): sender-side time per additional destination;
* ``l_ready``  — (a) for *readiness*: send start → receiver can begin
  sending to its own children (with NIC-based per-packet forwarding this
  is reached after the **first packet**, which is why large pipelined
  messages get chain-shaped trees);
* ``l_full``   — send start → receiver holds the complete message
  (used to evaluate completion time).

Construction is the greedy earliest-ready-sender schedule: repeatedly let
the sender that is ready soonest adopt the next destination.  For the
classical postal model (``l_ready == l_full``) this greedy is optimal
(Bar-Noy & Kipnis 1992); a brute-force check over all trees for small n
is part of the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Sequence

from repro.errors import TreeError
from repro.net.packet import GM_HEADER_BYTES, split_message
from repro.trees.base import SpanningTree
from repro.trees.shapes import _check_members

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.params import GMCostModel

__all__ = [
    "PostalParams",
    "postal_params",
    "optimal_postal_tree",
    "postal_completion_time",
]


@dataclass(frozen=True)
class PostalParams:
    """Postal-model timing parameters (µs)."""

    l_ready: float
    l_full: float
    gap: float

    def __post_init__(self) -> None:
        if self.gap <= 0:
            raise TreeError(f"gap must be positive, got {self.gap}")
        if self.l_ready < 0 or self.l_full < self.l_ready:
            raise TreeError(
                f"need 0 <= l_ready <= l_full, got {self.l_ready}, {self.l_full}"
            )

    @property
    def fanout_ratio(self) -> float:
        """The paper's ratio (a)/(b) — destinations a sender reaches
        before its first receiver can start sending."""
        return self.l_ready / self.gap


def postal_params(
    cost: "GMCostModel", size: int, scheme: str = "nic"
) -> PostalParams:
    """Derive postal parameters from the cost model at a message size.

    ``scheme="nic"`` models the NIC-based multisend + forwarding path;
    ``scheme="host"`` models host-based store-and-forward (used for the
    tree-shape ablation — MPICH itself always uses a binomial tree).
    """
    chunks = split_message(size, cost.mtu)
    nchunks = len(chunks)
    ser_total = sum(cost.wire_time(c + GM_HEADER_BYTES) for c in chunks)
    ser_first = cost.wire_time(chunks[0] + GM_HEADER_BYTES)
    # Two links + one switch on the common single-crossbar fabric.
    route_latency = 2 * cost.link_latency + cost.switch_hop_latency

    if scheme == "nic":
        # (b): one more replica occupies the sender's wire for the whole
        # message (chunk replicas interleave, but wire occupancy is what
        # delays every child's completion) plus per-packet rewrites.
        gap = ser_total + nchunks * cost.nic_header_rewrite
        # Readiness: first packet arrives, is staged through NIC SRAM,
        # and can be forwarded.
        forward_cost = (
            cost.nic_forward_processing
            + chunks[0] / cost.nic_sram_copy_bandwidth
        )
        l_ready = (
            ser_first
            + route_latency
            + cost.nic_recv_processing
            + cost.nic_group_lookup
            + forward_cost
            + cost.nic_header_rewrite
        )
        # Full delivery: the whole message has streamed across.
        l_full = max(
            ser_total + route_latency + cost.nic_recv_processing, l_ready
        )
        return PostalParams(l_ready=min(l_ready, l_full), l_full=l_full, gap=gap)

    if scheme == "host":
        dma_total = sum(cost.dma_time(c + GM_HEADER_BYTES) for c in chunks)
        gap = (
            cost.host_send_post
            + cost.nic_send_token_processing
            + ser_total
        )
        # Store-and-forward: the host must receive the *whole* message,
        # take the event, and post new sends before children see data.
        l_full = (
            ser_total
            + route_latency
            + cost.nic_recv_processing
            + dma_total
            + cost.nic_event_post
            + cost.host_event_dispatch
        )
        l_ready = l_full + cost.host_send_post
        return PostalParams(
            l_ready=min(l_ready, l_full), l_full=l_full, gap=gap
        )

    raise TreeError(f"unknown postal scheme {scheme!r}")


def optimal_postal_tree(
    root: int, destinations: Sequence[int], params: PostalParams
) -> SpanningTree:
    """Greedy earliest-ready-sender construction.

    Destinations are adopted in the order given (callers pass them sorted
    by network ID, which makes every non-root parent's ID smaller than
    its children's — the paper's deadlock-avoidance rule, established
    here by construction because parents are always adopted earlier).
    """
    dests = _check_members(root, destinations)
    children: dict[int, list[int]] = {root: []}
    seq = count()
    # (ready_time, tiebreak, node); the tiebreak keeps determinism and
    # prefers earlier-adopted senders, matching the paper's preference
    # for filling existing senders before deepening.
    heap: list[tuple[float, int, int]] = [(0.0, next(seq), root)]
    for dest in dests:
        ready_at, _tb, sender = heapq.heappop(heap)
        children.setdefault(sender, []).append(dest)
        children.setdefault(dest, [])
        # The sender may adopt another destination one gap later...
        heapq.heappush(heap, (ready_at + params.gap, next(seq), sender))
        # ...and the new child becomes a sender once ready.
        heapq.heappush(heap, (ready_at + params.l_ready, next(seq), dest))
    return SpanningTree(
        root=root,
        children={n: tuple(c) for n, c in children.items() if c},
    )


def postal_completion_time(
    tree: SpanningTree, params: PostalParams
) -> float:
    """Model-predicted time until every node holds the full message."""
    ready = {tree.root: 0.0}
    full = {tree.root: 0.0}
    worst = 0.0
    for node in tree.nodes:  # BFS order: parents before children
        t = ready[node]
        for i, child in enumerate(tree.children_of(node)):
            send_start = t + i * params.gap
            ready[child] = send_start + params.l_ready
            full[child] = send_start + params.l_full
            worst = max(worst, full[child])
    return worst
