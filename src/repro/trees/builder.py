"""High-level tree construction with the paper's deadlock-ordering rule.

Paper §5 ("Deadlock"): *"we sort the list of destinations linearly by
their network IDs before tree construction, and a child must have a
network ID greater than its parent unless its parent is the root"* —
this breaks any cycle in the receive-token wait graph across concurrent
broadcasts, because token waits then only point from smaller to larger
IDs (the root uses send tokens, never a receive token).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import TreeError
from repro.trees.base import SpanningTree
from repro.trees.binomial import binomial_tree
from repro.trees.postal import optimal_postal_tree, postal_params
from repro.trees.shapes import chain_tree, flat_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gm.params import GMCostModel

__all__ = ["build_tree", "check_deadlock_ordering", "TREE_SHAPES"]

#: Shapes :func:`build_tree` knows how to construct.
TREE_SHAPES = ("optimal", "binomial", "flat", "chain")


def check_deadlock_ordering(tree: SpanningTree) -> None:
    """Raise :class:`TreeError` unless the ID-ordering rule holds."""
    for parent, child in tree.edges():
        if parent == tree.root:
            continue
        if child <= parent:
            raise TreeError(
                f"deadlock-ordering violation: child {child} <= parent "
                f"{parent} (non-root parents must have smaller IDs)"
            )


def build_tree(
    root: int,
    destinations: Iterable[int],
    *,
    shape: str = "optimal",
    cost: "GMCostModel | None" = None,
    size: int = 0,
    scheme: str = "nic",
) -> SpanningTree:
    """Build a multicast tree with ID-sorted destinations.

    Parameters
    ----------
    shape:
        ``"optimal"`` (postal-model, needs *cost* and *size*),
        ``"binomial"``, ``"flat"``, or ``"chain"``.
    cost, size, scheme:
        For the optimal shape: the cost model, the message size whose
        postal parameters shape the tree, and which forwarding scheme's
        parameters to use.
    """
    dests = sorted(set(destinations) - {root})
    if shape == "optimal":
        if cost is None:
            raise TreeError("optimal tree requires a cost model")
        params = postal_params(cost, size, scheme=scheme)
        tree = optimal_postal_tree(root, dests, params)
    elif shape == "binomial":
        tree = binomial_tree(root, dests)
    elif shape == "flat":
        tree = flat_tree(root, dests)
    elif shape == "chain":
        tree = chain_tree(root, dests)
    else:
        raise TreeError(f"unknown tree shape {shape!r}")
    check_deadlock_ordering(tree)
    return tree
