"""Partitioned serving: the sustained-traffic workload on shards.

One :class:`~repro.workload.serving.TrafficEngine` per shard, each
spawning only the programs whose node lives on that shard (the roots'
arrival RNG streams are named per group, so schedules are identical to
serial wherever the root lands).  The shards advance through the
conservative safe-window conductor (:mod:`repro.sim.parallel`) —
in-process, or one OS process per shard — and the per-shard
:class:`ServingStats` merge into one serial-equivalent snapshot.

What partitioning preserves exactly: every count, and therefore every
rate the snapshot reports — and the result is invariant across shard
counts and across in-process vs. process-per-shard execution.  What it
does not promise to reproduce from the *serial* run: the order of
``latencies_us`` (concatenated in shard order; quantiles sort), and
serial's same-instant tie order on contended links — two walks
claiming one channel in the same simulated instant are granted in
per-shard scheduling order, not serial's global order, so a tie swap
shifts the two latencies by one serialization time (and can add a
counted grant event to ``sim_events``).  Tie-free workloads — the
golden trace, the fig-3 sweep, the smoke-scale serving tests — replay
serial byte-identically; the heavy benchmark workload
(:mod:`repro.perf.bench_parallel`) measures and reports the tie drift
instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.scenario.partition import build_shard, make_plan
from repro.scenario.spec import ScenarioSpec
from repro.sim.parallel import (
    ShardSet,
    merge_flight_events,
    run_sharded_processes,
)
from repro.workload.serving import ServingStats, TrafficEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.parallel import PartitionPlan

__all__ = ["merge_serving_stats", "run_serving_partitioned"]


def merge_serving_stats(shard_stats: list[ServingStats]) -> ServingStats:
    """One serial-equivalent :class:`ServingStats` from per-shard stats."""
    first = shard_stats[0]
    merged = ServingStats(
        duration_us=first.duration_us,
        warmup_us=first.warmup_us,
        n_groups=first.n_groups,
    )
    for stats in shard_stats:
        merged.msgs_posted += stats.msgs_posted
        merged.msgs_delivered += stats.msgs_delivered
        merged.churn_events += stats.churn_events
        merged.sim_events += stats.sim_events
        merged.latencies_us.extend(stats.latencies_us)
        for gid, gs in stats.per_group.items():
            into = merged.per_group.get(gid)
            if into is None:
                merged.per_group[gid] = into = type(gs)(scheme=gs.scheme)
            into.posted += gs.posted
            into.delivered += gs.delivered
            into.churn_epochs += gs.churn_epochs
            into.sum_delivery_us += gs.sum_delivery_us
            if gs.max_delivery_us > into.max_delivery_us:
                into.max_delivery_us = gs.max_delivery_us
    return merged


class _ServingShard:
    """One shard's engine, shaped for the conductor protocols."""

    def __init__(
        self,
        spec: ScenarioSpec,
        plan: "PartitionPlan",
        shard_id: int,
        registry: Any = None,
        flight: Any = None,
    ):
        cluster = build_shard(spec, plan, shard_id, registry, flight=flight)
        self.engine = TrafficEngine(spec, registry=registry, cluster=cluster)
        self.sim = cluster.sim
        self.network = cluster.network
        self.engine.start()

    def result(self) -> tuple[ServingStats, Any]:
        """Per-shard stats plus the shard's metrics registry (if any)."""
        return self.engine.finalize(), self.sim.metrics


def _serving_factory(
    shard_id: int, spec_json: str, registry_cls: Any
) -> _ServingShard:
    """Process-mode shard builder (module-level: must pickle)."""
    spec = ScenarioSpec.from_json(spec_json)
    registry = registry_cls() if registry_cls is not None else None
    return _ServingShard(spec, make_plan(spec), shard_id, registry=registry)


def run_serving_partitioned(
    spec: ScenarioSpec, registry: Any = None, flight: Any = None
) -> ServingStats:
    """Run a partitioned serving scenario; serial-equivalent stats.

    In-process mode shares *registry* across every shard simulator, so
    instrument updates land merged by construction.  Process mode gives
    each worker a fresh registry of the same (duck-typed) class and
    folds the per-shard registries back into *registry* via its
    ``merge`` method afterwards.

    ``flight`` (a :class:`repro.obs.flight.FlightRecorder`-shaped
    object) is forked per shard in-process and the shard streams merged
    back in global time order afterwards; process mode runs
    flight-detached (per-worker events are not piped back).
    """
    plan = make_plan(spec)
    until = spec.traffic.duration_us
    if spec.partition.processes:
        registry_cls = type(registry) if registry is not None else None
        results = run_sharded_processes(
            _serving_factory, (spec.to_json(), registry_cls), plan,
            until=until,
        )
        shard_stats = [stats for stats, _metrics in results]
        if registry is not None:
            merge = getattr(registry, "merge", None)
            for _stats, shard_metrics in results:
                if merge is not None and shard_metrics is not None:
                    merge(shard_metrics)
    else:
        shards = [
            _ServingShard(
                spec, plan, sid, registry=registry,
                flight=flight.fork() if flight is not None else None,
            )
            for sid in range(plan.n_shards)
        ]
        ShardSet(
            plan,
            [s.sim for s in shards],
            [s.network for s in shards],
        ).run(until=until)
        shard_stats = [s.engine.finalize() for s in shards]
        if flight is not None:
            flight.absorb(merge_flight_events([s.sim for s in shards]))
    merged = merge_serving_stats(shard_stats)
    if registry is not None:
        # Re-stamp the end-of-run gauges with the merged (global) rates;
        # each shard's finalize only saw its own slice.
        registry.set_gauge(
            "serving.delivered_msgs_per_sec", merged.delivered_msgs_per_sec
        )
        registry.set_gauge(
            "serving.sim_events_per_us", merged.sim_events_per_us
        )
    return merged
