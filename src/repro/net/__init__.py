"""Myrinet-like network fabric.

Models the parts of Myrinet-2000 the GM protocol can observe: full-duplex
2 Gb/s links with serialization and per-hop routing latency, cut-through
crossbar switches (packet-granularity approximation, see DESIGN.md §3.2),
source-routed paths over single-switch / Clos / arbitrary topologies, and
packet-loss injection standing in for the nonzero bit-error rates the
paper's reliability layer exists to handle.
"""

from repro.net.fabric import Network
from repro.net.fault import (
    BernoulliLoss,
    BitErrorLoss,
    CompositeLoss,
    LossModel,
    NoLoss,
    ScriptedLoss,
)
from repro.net.link import Link
from repro.net.packet import (
    GM_HEADER_BYTES,
    GM_MTU_PAYLOAD,
    Packet,
    PacketHeader,
    PacketType,
    split_message,
)
from repro.net.switch import CrossbarSwitch
from repro.net.topology import (
    Topology,
    clos,
    from_graph,
    line,
    single_switch,
)

__all__ = [
    "BernoulliLoss",
    "BitErrorLoss",
    "CompositeLoss",
    "CrossbarSwitch",
    "GM_HEADER_BYTES",
    "GM_MTU_PAYLOAD",
    "Link",
    "LossModel",
    "Network",
    "NoLoss",
    "Packet",
    "PacketHeader",
    "PacketType",
    "ScriptedLoss",
    "Topology",
    "clos",
    "from_graph",
    "line",
    "single_switch",
    "split_message",
]
