"""Tests for the multicast scheme registry (repro.mcast.schemes)."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mcast.features import SCHEMES as FEATURE_SCHEMES
from repro.mcast.manager import run_scheme
from repro.mcast.schemes import (
    BoundScheme,
    SchemeSpec,
    available_schemes,
    create_scheme,
    get_scheme,
    register_scheme,
    resolve_scheme,
)
from repro.trees import build_tree


def _cluster_and_tree(n=8):
    cluster = Cluster(ClusterConfig(n_nodes=n))
    tree = build_tree(0, range(1, n), shape="binomial")
    return cluster, tree


class TestRegistry:
    def test_paper_schemes_registered(self):
        keys = available_schemes()
        for key in ("nic_based", "nic_multisend", "host_based",
                    "nic_assisted", "fmmc", "lfc"):
            assert key in keys

    def test_every_scheme_constructible(self):
        for key in available_schemes():
            cluster, tree = _cluster_and_tree()
            bound = create_scheme(key, cluster, tree)
            assert isinstance(bound, BoundScheme)
            assert bound.spec.key == key

    def test_unknown_key_lists_alternatives(self):
        with pytest.raises(ValueError, match="nic_based"):
            get_scheme("carrier_pigeon")

    def test_duplicate_registration_rejected(self):
        spec = get_scheme("nic_based")
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(spec)

    def test_feature_links_resolve(self):
        # Every spec's feature row must exist in the Fig. 1 data.
        for key in available_schemes():
            spec = get_scheme(key)
            if spec.feature_key is not None:
                assert spec.features is FEATURE_SCHEMES[spec.feature_key]
            else:
                assert spec.features is None

    def test_legacy_names_are_context_dependent(self):
        # "nb" is the flat-group multisend in the Fig. 3 harness but the
        # full NIC-based scheme in the Fig. 5 harness.
        assert resolve_scheme("nb", context="multisend") == "nic_multisend"
        assert resolve_scheme("nb", context="multicast") == "nic_based"
        assert resolve_scheme("hb", context="multisend") == "host_based"
        assert resolve_scheme("hb", context="multicast") == "host_based"
        # Canonical keys pass through any context.
        assert resolve_scheme("nic_assisted") == "nic_assisted"
        with pytest.raises(ValueError, match="unknown"):
            resolve_scheme("nb", context="nonsense")

    def test_default_trees(self):
        assert get_scheme("nic_based").default_tree == "optimal"
        assert get_scheme("nic_multisend").default_tree == "flat"
        assert get_scheme("host_based").default_tree == "binomial"
        assert get_scheme("nic_based").tree_uses_cost

    def test_spec_is_frozen(self):
        spec = get_scheme("nic_based")
        with pytest.raises(AttributeError):
            spec.key = "other"
        assert isinstance(spec, SchemeSpec)


class TestRunScheme:
    @pytest.mark.parametrize(
        "key",
        ["nic_based", "nic_multisend", "host_based", "nic_assisted", "fmmc"],
    )
    def test_all_destinations_delivered(self, key):
        cluster, tree = _cluster_and_tree()
        result = run_scheme(cluster, key, tree, 1024)
        assert sorted(result["delivered"]) == list(range(1, 8))

    def test_lfc_runs_on_abstract_fabric(self):
        cluster, tree = _cluster_and_tree()
        result = run_scheme(cluster, "lfc", tree, 64)
        # Every non-root node saw multicast 0 exactly once.
        for node_id in range(1, 8):
            assert result["delivered"][node_id] == [0]

    def test_nic_based_matches_manager_multicast(self):
        from repro.mcast.manager import multicast

        cluster, tree = _cluster_and_tree()
        via_registry = run_scheme(cluster, "nic_based", tree, 2048)

        cluster2, tree2 = _cluster_and_tree()
        direct = multicast(cluster2, tree2, 2048)
        assert via_registry["delivered"] == direct["delivered"]


class TestRunnerUsesRegistry:
    def test_measure_multisend_accepts_canonical_keys(self):
        from repro.experiments.runner import measure_multisend

        legacy = measure_multisend(3, 256, "nb", iterations=3, warmup=1)
        canonical = measure_multisend(
            3, 256, "nic_multisend", iterations=3, warmup=1
        )
        assert legacy == canonical

    def test_measure_gm_multicast_accepts_canonical_keys(self):
        from repro.experiments.runner import measure_gm_multicast

        legacy = measure_gm_multicast(4, 256, "nb", iterations=3, warmup=1)
        canonical = measure_gm_multicast(
            4, 256, "nic_based", iterations=3, warmup=1
        )
        assert legacy.latency == canonical.latency

    def test_unknown_scheme_raises(self):
        from repro.experiments.runner import measure_gm_multicast

        with pytest.raises(ValueError, match="unknown"):
            measure_gm_multicast(4, 256, "smoke_signals", iterations=1)
