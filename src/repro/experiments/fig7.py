"""Figure 7: skew-tolerance improvement vs system size.

"For both sizes of messages, the improvement factor becomes greater as
the system size increases for a fixed amount of process skew of 400 µs.
This suggests that a larger size system can benefit more from the
NIC-based multicast for the reduced effects of process skew."
"""

from __future__ import annotations

from repro.experiments.parallel import run_grid
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.scenario import ScenarioGrid, skew_point

__all__ = ["run", "SIZES", "NODE_COUNTS"]

SIZES = (4, 4096)  #: paper: 4-byte and 4 KB messages
NODE_COUNTS = (4, 8, 12, 16)
#: uniform ±1600 µs draw -> mean applied skew ≈ 400 µs
MAX_SKEW = 3200.0


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    iterations = 10 if quick else 30
    counts = (4, 16) if quick else node_counts
    result = FigureResult(
        figure_id="fig7",
        title="Skew-tolerance improvement factor vs system size "
        "(~400 µs mean skew)",
    )
    grid = ScenarioGrid("fig7")
    for size in SIZES:
        for n in counts:
            for scheme in ("HB", "NB"):
                grid.add(
                    (scheme, size, n),
                    skew_point(
                        n, scheme == "NB", MAX_SKEW, size, iterations,
                        cost=cost,
                    ),
                    label=f"fig7[{scheme},n={n},size={size}]",
                )
    values = run_grid(grid, jobs=jobs)
    for size in SIZES:
        series = Series(label=f"factor-{size}B")
        for n in counts:
            hb = values[("HB", size, n)]
            nb = values[("NB", size, n)]
            series.add(n, hb.mean_bcast_cpu_time / nb.mean_bcast_cpu_time)
        result.series.append(series)
    for series in result.series:
        first, last = series.ys()[0], series.ys()[-1]
        result.headlines[
            f"{series.label}: factor growth {counts[0]}->{counts[-1]} nodes "
            "(paper: increases)"
        ] = last - first
    return result
