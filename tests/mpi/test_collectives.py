"""MPI collectives: barrier, host-based and NIC-based broadcast."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator, dissemination_rounds
from repro.mpi.bcast import rank_binomial_tree
from repro.net import BernoulliLoss


def make_comm(n=8, nic_bcast=True, loss=None, **cfg):
    cluster = Cluster(ClusterConfig(n_nodes=n, **cfg), loss=loss)
    return Communicator(cluster, nic_bcast=nic_bcast)


class TestBarrier:
    def test_rounds_formula(self):
        assert dissemination_rounds(1) == 0
        assert dissemination_rounds(2) == 1
        assert dissemination_rounds(5) == 3
        assert dissemination_rounds(16) == 4

    def test_barrier_synchronizes(self):
        comm = make_comm(6)
        exit_times = {}

        def program(ctx):
            # Ranks arrive at wildly different times...
            yield from ctx.compute(ctx.rank * 100.0)
            yield from ctx.barrier()
            exit_times[ctx.rank] = ctx.sim.now

        comm.run(program)
        # ...but nobody leaves before the last arrival at t=500.
        assert min(exit_times.values()) >= 500.0
        spread = max(exit_times.values()) - min(exit_times.values())
        assert spread < 60.0

    def test_repeated_barriers(self):
        comm = make_comm(4)
        counts = []

        def program(ctx):
            for _ in range(5):
                yield from ctx.barrier()
            counts.append(ctx.rank)

        comm.run(program)
        assert len(counts) == 4


class TestRankBinomialTree:
    def test_root_zero_matches_plain_binomial(self):
        tree = rank_binomial_tree(8, 0)
        assert sorted(tree.children_of(0)) == [1, 2, 4]

    def test_rotation(self):
        tree = rank_binomial_tree(8, 3)
        assert tree.root == 3
        assert sorted(tree.nodes) == list(range(8))

    @given(
        size=st.integers(min_value=1, max_value=40),
        root=st.integers(min_value=0, max_value=39),
    )
    def test_property_covers_all_ranks(self, size, root):
        if root >= size:
            root %= size
        tree = rank_binomial_tree(size, root)
        assert sorted(tree.nodes) == list(range(size))


class TestBcast:
    @pytest.mark.parametrize("nic", [True, False], ids=["nic", "host"])
    def test_payload_reaches_all(self, nic):
        comm = make_comm(8, nic_bcast=nic)
        got = {}

        def program(ctx):
            value = {"data": 42} if ctx.rank == 2 else None
            value = yield from ctx.bcast(root=2, size=512, payload=value)
            got[ctx.rank] = value

        comm.run(program)
        assert all(got[r] == {"data": 42} for r in range(8))

    @pytest.mark.parametrize("nic", [True, False], ids=["nic", "host"])
    def test_repeated_bcasts(self, nic):
        comm = make_comm(4, nic_bcast=nic)
        got = {r: [] for r in range(4)}

        def program(ctx):
            for k in range(6):
                value = k * 10 if ctx.rank == 0 else None
                value = yield from ctx.bcast(root=0, size=64, payload=value)
                got[ctx.rank].append(value)

        comm.run(program)
        for r in range(4):
            assert got[r] == [0, 10, 20, 30, 40, 50]

    def test_nic_bcast_creates_group_once(self):
        comm = make_comm(4)

        def program(ctx):
            for _ in range(3):
                yield from ctx.bcast(root=0, size=64)

        comm.run(program)
        assert len(comm.bcast_groups) == 1
        # Group table holds exactly one entry per node.
        gid = comm.bcast_groups[0]
        for node in comm.cluster.nodes:
            assert gid in node.mcast.table

    def test_different_roots_different_groups(self):
        comm = make_comm(4)

        def program(ctx):
            yield from ctx.bcast(root=0, size=64)
            yield from ctx.bcast(root=1, size=64)

        comm.run(program)
        assert set(comm.bcast_groups) == {0, 1}
        assert comm.bcast_groups[0] != comm.bcast_groups[1]

    def test_first_bcast_pays_group_creation(self):
        comm = make_comm(8)
        times = []

        def program(ctx):
            for _ in range(3):
                t0 = ctx.sim.now
                yield from ctx.bcast(root=0, size=64)
                if ctx.rank == 0:
                    times.append(ctx.sim.now - t0)

        comm.run(program)
        assert times[0] > 2 * times[1]  # demand-driven creation cost

    def test_large_message_falls_back_to_host_based(self):
        comm = make_comm(4)
        got = {}

        def program(ctx):
            value = "big" if ctx.rank == 0 else None
            value = yield from ctx.bcast(root=0, size=60_000, payload=value)
            got[ctx.rank] = value

        comm.run(program)
        assert all(v == "big" for v in got.values())
        assert comm.bcast_groups == {}  # NIC path never engaged

    def test_nic_beats_host_bcast_16_ranks(self):
        def bcast_time(nic, size):
            comm = make_comm(16, nic_bcast=nic)
            done = {}

            def program(ctx):
                # warm up (group creation)
                yield from ctx.bcast(root=0, size=size)
                yield from ctx.barrier()
                t0 = ctx.sim.now
                yield from ctx.bcast(root=0, size=size)
                done[ctx.rank] = ctx.sim.now - t0

            comm.run(program)
            return max(done.values())

        for size in (8, 1024, 8192):
            t_nic = bcast_time(True, size)
            t_host = bcast_time(False, size)
            assert t_nic < t_host, size
            assert 1.2 < t_host / t_nic < 3.0, size

    def test_bcast_under_loss_still_correct(self):
        comm = make_comm(6, loss=BernoulliLoss(0.1), seed=5)
        got = {}

        def program(ctx):
            for k in range(4):
                value = k if ctx.rank == 0 else None
                value = yield from ctx.bcast(root=0, size=256, payload=value)
                got.setdefault(ctx.rank, []).append(value)

        comm.run(program)
        for r in range(6):
            assert got[r] == [0, 1, 2, 3]

    def test_bcast_cpu_time_accounted(self):
        comm = make_comm(4)

        def program(ctx):
            yield from ctx.bcast(root=0, size=64)

        comm.run(program)
        for ctx in comm.ranks:
            assert ctx.bcast_calls == 1
            assert ctx.bcast_cpu_time > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=2, max_value=10),
    root=st.integers(min_value=0, max_value=9),
    size=st.sampled_from([0, 8, 2048, 16287]),
    nic=st.booleans(),
)
def test_property_bcast_correct_everywhere(n, root, size, nic):
    root %= n
    comm = make_comm(n, nic_bcast=nic)
    got = {}

    def program(ctx):
        value = ("payload", root) if ctx.rank == root else None
        value = yield from ctx.bcast(root=root, size=size, payload=value)
        got[ctx.rank] = value

    comm.run(program)
    assert all(got[r] == ("payload", root) for r in range(n))
