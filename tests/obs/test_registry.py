"""Unit tests for the metrics registry instruments."""

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS_US,
    OCCUPANCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


def test_counter_inc():
    reg = MetricsRegistry()
    reg.inc("a.hits")
    reg.inc("a.hits", 4)
    assert reg.value("a.hits") == 5
    assert reg.counter("a.hits") is reg.get("a.hits")


def test_gauge_tracks_high_water():
    reg = MetricsRegistry()
    reg.set_gauge("nic.buf", 3)
    reg.set_gauge("nic.buf", 7)
    reg.set_gauge("nic.buf", 2)
    g = reg.get("nic.buf")
    assert g.value == 2
    assert g.max_value == 7
    g.add(-2)
    assert g.value == 0
    assert g.max_value == 7


def test_histogram_bucketing():
    h = Histogram("lat", bounds=(1, 10, 100))
    for v in (0.5, 1, 5, 10, 99, 1000):
        h.observe(v)
    # bisect_left on upper bounds: value lands in first bucket >= it.
    assert h.counts == [2, 2, 1, 1]  # <=1, <=10, <=100, +inf
    assert h.count == 6
    assert h.max_seen == 1000
    assert h.min_seen == 0.5


def test_histogram_percentile_conservative_and_overflow():
    h = Histogram("lat", bounds=(10, 100))
    for _ in range(99):
        h.observe(5)
    h.observe(5000)
    assert h.percentile(0.50) == 10   # bucket upper bound
    assert h.percentile(1.0) == 5000  # overflow reports true max
    with pytest.raises(ValueError):
        h.percentile(0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(MetricsError):
        Histogram("h", bounds=())
    with pytest.raises(MetricsError):
        Histogram("h", bounds=(5, 1))
    with pytest.raises(MetricsError):
        Histogram("h", bounds=(1, 1, 2))


def test_histogram_snapshot_shape():
    h = Histogram("lat", bounds=(1, 2))
    h.observe(1.5)
    snap = h.snapshot()
    assert snap["type"] == "histogram"
    assert snap["count"] == 1
    assert snap["buckets"] == {"<=1": 0, "<=2": 1, "+inf": 0}
    assert snap["mean"] == 1.5
    empty = Histogram("e").snapshot()
    assert empty["count"] == 0
    assert empty["min"] is None and empty["max"] is None


def test_type_conflict_raises():
    reg = MetricsRegistry()
    reg.inc("x")
    with pytest.raises(MetricsError):
        reg.set_gauge("x", 1)
    with pytest.raises(MetricsError):
        reg.observe("x", 1.0)
    # Same type re-registers fine.
    assert reg.counter("x").value == 1


def test_value_defaults_and_histogram_count():
    reg = MetricsRegistry()
    assert reg.value("missing") == 0
    assert reg.value("missing", default=None) is None
    reg.observe("h", 3.0)
    reg.observe("h", 4.0)
    assert reg.value("h") == 2  # histogram -> observation count


def test_names_snapshot_section():
    reg = MetricsRegistry()
    reg.inc("net.bytes", 100)
    reg.inc("nic.packets_sent")
    reg.set_gauge("nic.buf", 2)
    assert reg.names() == ("net.bytes", "nic.buf", "nic.packets_sent")
    assert len(reg) == 3
    assert "net.bytes" in reg
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["net.bytes"] == {"type": "counter", "value": 100}
    nic = reg.section("nic")
    assert set(nic) == {"nic.buf", "nic.packets_sent"}
    # Prefix match is on dotted boundaries, not substrings.
    reg.inc("nicety")
    assert "nicety" not in reg.section("nic")


def test_default_bucket_constants_ascending():
    assert list(LATENCY_BUCKETS_US) == sorted(set(LATENCY_BUCKETS_US))
    assert list(OCCUPANCY_BUCKETS) == sorted(set(OCCUPANCY_BUCKETS))


def test_instrument_repr_free_slots():
    # __slots__ holds instrument size down; no __dict__ per instrument.
    assert not hasattr(Counter("c"), "__dict__")
    assert not hasattr(Gauge("g"), "__dict__")
    assert not hasattr(Histogram("h"), "__dict__")
