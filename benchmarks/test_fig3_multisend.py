"""Bench: Figure 3 — NIC-based multisend vs host-based unicasts.

Regenerates the latency and improvement-factor series for 3/4/8
destinations and asserts the paper's shape: ~2× improvement for small
messages to 4 destinations, decaying to ~1 at 16 KB.
"""

from repro.experiments import fig3


def test_fig3_multisend(once):
    result = once(lambda: fig3.run(quick=True))
    print()
    print(result.render())

    factor4 = result.get("factor-4dest")
    # Paper: up to 2.05x for <=128 B to 4 destinations.
    assert 1.7 < factor4.y_at(1) < 2.4
    # Paper: decays with size...
    assert factor4.y_at(1) > factor4.y_at(512) > factor4.y_at(16384) - 0.2
    # ...and levels off around/just below 1 at 16 KB.
    assert 0.85 < factor4.y_at(16384) < 1.1

    # More destinations -> more repeated processing saved (small msgs).
    f3, f8 = result.get("factor-3dest"), result.get("factor-8dest")
    assert f3.y_at(1) < factor4.y_at(1) < f8.y_at(1)

    # Latency curves are monotone in size for every scheme.
    for label in ("HB-4", "NB-4"):
        ys = result.get(label).ys()
        assert ys == sorted(ys)
