"""Unified observability: metrics, flight traces, health, timelines.

``repro.obs`` is the stack's top observation layer.  It may import from
every other layer, but nothing below ``experiments``/``perf`` may
import it back (enforced by ``tools/check_layering.py``): the
instrumented layers talk to the registry only through the duck-typed
``sim.metrics`` slot and to the flight recorder only through
``sim.flight`` — both ``None`` unless an observer attaches one.  See
``docs/observability.md``.
"""

from repro.obs.critical import (
    SEGMENTS,
    DestinationPath,
    TraceCriticalPath,
    critical_path_to_dict,
    critical_paths,
    render_critical_path,
)
from repro.obs.flight import (
    ORIGIN_STRIDE,
    STAGES,
    FlightEvent,
    FlightRecorder,
    event_to_dict,
    gauge_series,
)
from repro.obs.health import (
    ObservedRun,
    build_health_report,
    render_health_report,
    resilience_section,
    serving_section,
    run_observed,
)
from repro.obs.registry import (
    LATENCY_BUCKETS_US,
    OCCUPANCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.timeline import (
    SPAN_RULES,
    chrome_trace,
    chrome_trace_events,
    counter_events,
    spans_from_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeseries import TimeSeriesRecorder, render_timeseries

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "LATENCY_BUCKETS_US",
    "OCCUPANCY_BUCKETS",
    "FlightRecorder",
    "FlightEvent",
    "ORIGIN_STRIDE",
    "STAGES",
    "event_to_dict",
    "gauge_series",
    "SEGMENTS",
    "DestinationPath",
    "TraceCriticalPath",
    "critical_paths",
    "critical_path_to_dict",
    "render_critical_path",
    "TimeSeriesRecorder",
    "render_timeseries",
    "ObservedRun",
    "run_observed",
    "build_health_report",
    "render_health_report",
    "resilience_section",
    "serving_section",
    "SPAN_RULES",
    "chrome_trace",
    "chrome_trace_events",
    "counter_events",
    "spans_from_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
