"""Topology failure lifecycle: links and switches that die and recover.

The packet-loss machinery (:mod:`repro.net.fault`) models *bit* errors —
individual CRC drops the ACK/timeout machinery recovers.  This module is
its topology-level generalization: whole cables and switches go down and
come back up mid-run.  A :class:`FailureSpec` declares the schedule
(explicit events, or a seeded MTBF draw); a :class:`FailureInjector`
applies each transition to the live :class:`~repro.net.topology.Topology`
(bumping ``Topology.version`` so every route/cut cache invalidates) and
notifies subscribers at *detection* time — event time plus ``detect_us``
— never omnisciently at the instant of the fault.  Higher layers
(multicast recovery, scenario harnesses) therefore react exactly as a
real GM control program would: after the fabric has already been eating
packets for a little while.

Determinism: the schedule is materialized eagerly at injector
construction from the simulator's named RNG stream (``sim.rng(stream)``,
derived from the cluster seed), so every shard of a partitioned run
builds the identical schedule and applies the identical transitions at
the identical instants — no cross-shard control traffic is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.topology import Topology
    from repro.sim.engine import Simulator

__all__ = [
    "FAILURE_ACTIONS",
    "FAILURE_KINDS",
    "FailureEvent",
    "FailureInjector",
    "FailureSpec",
    "nic_link_target",
]

#: Failure kinds a declarative :class:`FailureSpec` can name.
FAILURE_KINDS = ("none", "scheduled", "random")

#: Transitions an event can apply.  Link targets are indices into the
#: deterministic :meth:`Topology.cables` list; switch targets are switch
#: ids.
FAILURE_ACTIONS = ("link_down", "link_up", "switch_down", "switch_up")

#: Target populations the random (MTBF) mode draws from.
FAILURE_TARGETS = ("nic_links", "links", "switches")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled transition: at ``time_us``, apply ``action`` to
    ``target``."""

    time_us: float
    action: str
    target: int

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ConfigError(
                f"failure event time must be >= 0, got {self.time_us}"
            )
        if self.action not in FAILURE_ACTIONS:
            raise ConfigError(
                f"unknown failure action {self.action!r}; "
                f"pick one of {FAILURE_ACTIONS}"
            )
        if self.target < 0:
            raise ConfigError(f"failure target must be >= 0, got {self.target}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_us": self.time_us,
            "action": self.action,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailureEvent":
        if not isinstance(data, dict):
            raise ConfigError(f"failure event must be an object, got {data!r}")
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ConfigError(
                f"unknown failure event keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FailureSpec:
    """Declarative, JSON-serializable failure schedule.

    ``scheduled`` carries explicit :class:`FailureEvent` entries.
    ``random`` draws ``count`` link (or switch) failures with exponential
    inter-arrival gaps of mean ``mtbf_us``, each paired with a recovery
    after an exponential outage of mean ``mttr_us`` — the classic
    MTBF/MTTR availability model, seeded from the cluster seed via the
    named RNG ``stream`` so replays (and every shard of a partitioned
    run) draw the identical schedule.

    ``detect_us`` is the detection delay: subscribers hear about each
    transition that long after it happened, never before.
    """

    kind: str = "none"
    events: tuple[FailureEvent, ...] = ()
    detect_us: float = 5.0
    #: random (MTBF) mode only:
    mtbf_us: float = 0.0
    mttr_us: float = 0.0
    count: int = 0
    targets: str = "nic_links"
    stream: str = "failures"

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ConfigError(
                f"unknown failure kind {self.kind!r}; "
                f"pick one of {FAILURE_KINDS}"
            )
        if self.detect_us < 0:
            raise ConfigError(
                f"detect_us must be >= 0, got {self.detect_us}"
            )
        object.__setattr__(
            self,
            "events",
            tuple(
                ev if isinstance(ev, FailureEvent)
                else FailureEvent.from_dict(ev)
                for ev in self.events
            ),
        )
        if self.kind == "scheduled":
            if not self.events:
                raise ConfigError("scheduled failure spec needs events")
            times = [ev.time_us for ev in self.events]
            if times != sorted(times):
                raise ConfigError(
                    "scheduled failure events must be time-ordered"
                )
        if self.kind == "random":
            if self.events:
                raise ConfigError(
                    "random failure spec draws its own events; "
                    "use kind 'scheduled' for explicit ones"
                )
            if self.mtbf_us <= 0 or self.mttr_us <= 0:
                raise ConfigError(
                    "random failure spec needs mtbf_us > 0 and mttr_us > 0"
                )
            if self.count < 1:
                raise ConfigError(
                    f"random failure count must be >= 1, got {self.count}"
                )
            if self.targets not in FAILURE_TARGETS:
                raise ConfigError(
                    f"unknown failure target population {self.targets!r}; "
                    f"pick one of {FAILURE_TARGETS}"
                )

    # -- schedule materialization ------------------------------------------
    def schedule(
        self, topology: "Topology", rng: random.Random | None = None
    ) -> list[FailureEvent]:
        """The concrete, time-ordered event list for *topology*.

        Validates scheduled targets against the topology (eagerly — a
        bad index fails at build time, not mid-run) and draws the random
        schedule from *rng* when the kind is ``random``.
        """
        if self.kind == "none":
            return []
        if self.kind == "scheduled":
            n_cables = len(topology.cables())
            n_switches = topology.switch_count()
            for ev in self.events:
                bound = n_cables if ev.action.startswith("link") else n_switches
                if ev.target >= bound:
                    raise ConfigError(
                        f"failure event targets {ev.action.split('_')[0]} "
                        f"{ev.target}, but topology has only {bound}"
                    )
            return list(self.events)
        if rng is None:
            raise ConfigError("random failure schedule needs an RNG")
        if self.targets == "switches":
            pool = list(range(topology.switch_count()))
            down, up = "switch_down", "switch_up"
        else:
            cables = topology.cables()
            pool = list(range(len(cables)))
            if self.targets == "nic_links":
                pool = [
                    i for i, (a, b) in enumerate(cables)
                    if a[0] == "nic" or b[0] == "nic"
                ]
            down, up = "link_down", "link_up"
        if not pool:
            raise ConfigError(
                f"topology has no {self.targets} to fail"
            )
        events: list[FailureEvent] = []
        t = 0.0
        for _ in range(self.count):
            t += rng.expovariate(1.0 / self.mtbf_us)
            target = pool[rng.randrange(len(pool))]
            outage = rng.expovariate(1.0 / self.mttr_us)
            events.append(FailureEvent(t, down, target))
            events.append(FailureEvent(t + outage, up, target))
        events.sort(key=lambda ev: (ev.time_us, ev.action, ev.target))
        return events

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        if self.kind == "scheduled":
            out["events"] = [ev.to_dict() for ev in self.events]
        elif self.kind == "random":
            out["mtbf_us"] = self.mtbf_us
            out["mttr_us"] = self.mttr_us
            out["count"] = self.count
            if self.targets != "nic_links":
                out["targets"] = self.targets
        if self.detect_us != 5.0:
            out["detect_us"] = self.detect_us
        if self.stream != "failures":
            out["stream"] = self.stream
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailureSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"failure spec must be an object, got {data!r}")
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ConfigError(
                f"unknown failure spec keys: {', '.join(sorted(unknown))}"
            )
        if "events" in data:
            data = dict(
                data,
                events=tuple(
                    FailureEvent.from_dict(ev) if isinstance(ev, dict) else ev
                    for ev in data["events"]
                ),
            )
        return cls(**data)


class FailureInjector:
    """Applies a :class:`FailureSpec` to a live topology.

    Transitions are scheduled as simulator callbacks at construction
    (one apply at ``time_us``, one subscriber notification at
    ``time_us + detect_us``).  Subscription is the *only* sanctioned way
    for higher layers to learn of failures — reading
    ``topology._down_edges`` directly would be omniscient.
    """

    def __init__(self, sim: "Simulator", topology: "Topology", spec: FailureSpec):
        self.sim = sim
        self.topology = topology
        self.spec = spec
        rng = sim.rng(spec.stream) if spec.kind == "random" else None
        #: The concrete schedule (identical on every shard per seed).
        self.events: list[FailureEvent] = spec.schedule(topology, rng)
        self._subscribers: list[Callable[[FailureEvent], None]] = []
        #: Transitions actually applied (idempotent repeats excluded).
        self.transitions = 0
        for ev in self.events:
            sim.schedule_callback(ev.time_us, _ApplyCell(self, ev))
            sim.schedule_callback(
                ev.time_us + spec.detect_us, _NotifyCell(self, ev)
            )

    def subscribe(self, callback: Callable[[FailureEvent], None]) -> None:
        """Hear about each transition at detection time (not fault time)."""
        self._subscribers.append(callback)

    def _apply(self, ev: FailureEvent) -> None:
        topo = self.topology
        if ev.action == "link_down":
            changed = topo.set_link_state(ev.target, up=False)
        elif ev.action == "link_up":
            changed = topo.set_link_state(ev.target, up=True)
        elif ev.action == "switch_down":
            changed = topo.set_switch_state(ev.target, up=False)
        else:
            changed = topo.set_switch_state(ev.target, up=True)
        if not changed:
            return
        self.transitions += 1
        m = self.sim.metrics
        if m is not None:
            m.inc(f"net.failures.{ev.action}")
        if self.sim.trace.enabled:
            self.sim.record(
                "network", "failure", action=ev.action, target=ev.target
            )

    def _notify(self, ev: FailureEvent) -> None:
        for callback in self._subscribers:
            callback(ev)


class _ApplyCell:
    """Zero-arg callable binding (injector, event) without a closure."""

    __slots__ = ("injector", "event")

    def __init__(self, injector: FailureInjector, event: FailureEvent):
        self.injector = injector
        self.event = event

    def __call__(self) -> None:
        self.injector._apply(self.event)


class _NotifyCell:
    __slots__ = ("injector", "event")

    def __init__(self, injector: FailureInjector, event: FailureEvent):
        self.injector = injector
        self.event = event

    def __call__(self) -> None:
        self.injector._notify(self.event)


def nic_link_target(topology: "Topology", nic_id: int) -> int:
    """Cable index of *nic_id*'s attachment link — the natural target for
    "this node's NIC link dies" schedules (experiments, tests)."""
    return topology.nic_cable_index(nic_id)
