"""Reliability-family benchmark: the engine families on a pinned lossy
fixture.

One pinned workload — a 32-node Clos, one 16 KiB broadcast over the
binomial tree, 2% Bernoulli loss on multicast data packets, seed 4 —
run once per registered-scheme reliability family (the paper's
ACK-window Go-back-N, receiver-driven NACK, NACK+FEC).  Per family the
report carries completion latency, repair *round trips* (timeouts +
NACKs — the cost FEC's local reconstruction removes), repair packets
emitted, and the family-specific counters (suppressed NACKs, parity
sent, local reconstructions).  Results land in the ``reliability``
section of ``BENCH_kernel.json``.

Report-only: the simulator is deterministic, so these are simulated
microseconds, not wall-clock — they characterize the recovery designs
(CI gates the families through ``fig9``'s delivery and round-trip
checks, not through this section).  The full sweep is
``python -m repro.experiments --figure fig9``.
"""

from __future__ import annotations

from typing import Any

from repro.gm.params import GMCostModel
from repro.net.fault import LossSpec
from repro.obs.registry import MetricsRegistry
from repro.scenario import broadcast_point, run_spec

__all__ = ["bench_reliability", "NODES", "SIZE", "LOSS_RATE", "SEED"]

NODES = 32
SIZE = 16384
LOSS_RATE = 0.02
SEED = 4
SCHEMES = ("nic_based", "nic_nack", "nic_nack_fec")


def bench_reliability() -> dict[str, Any]:
    """Completion and repair-cost counters per family on the fixture."""
    report: dict[str, Any] = {
        "fixture": (
            f"{NODES}-node clos, {SIZE}B broadcast, binomial tree, "
            f"{LOSS_RATE:.0%} bernoulli data loss, seed {SEED}"
        ),
        "schemes": {},
    }
    members = list(range(1, NODES))
    for scheme in SCHEMES:
        spec = broadcast_point(
            NODES, SIZE, scheme,
            seed=SEED,
            tree_shape="binomial",
            loss=LossSpec(
                kind="bernoulli", rate=LOSS_RATE,
                packet_types=("MCAST_DATA",),
            ),
            cost=GMCostModel(),
            name=f"bench_reliability[{scheme}]",
        )
        registry = MetricsRegistry()
        point = run_spec(spec, registry=registry).value(SIZE)
        timeouts = registry.value("proto.retransmit_timeouts", 0)
        nacks = registry.value("proto.nack_sent", 0)
        report["schemes"][scheme] = {
            "delivered": len(point.deliveries),
            "expected": len(members),
            "completion_us": round(point.completion_us, 3),
            # The round trips a family needed: ACK-window pays timer
            # expiries, the NACK families pay NACKs; FEC's local
            # reconstructions appear in neither.
            "repair_round_trips": timeouts + nacks,
            "repair_packets": registry.value(
                "mcast.retransmit_packets", 0
            ),
            "retransmit_timeouts": timeouts,
            "nack_sent": nacks,
            "nack_suppressed": registry.value("proto.nack_suppressed", 0),
            "fec_parity_sent": registry.value("proto.fec_parity_sent", 0),
            "fec_repairs": registry.value("proto.fec_repairs", 0),
        }
    return report
