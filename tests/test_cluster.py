"""Unit tests for ClusterConfig and the Cluster façade."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.gm.params import GMCostModel
from repro.host import Host, Node


class TestConfig:
    def test_defaults_match_paper_testbed(self):
        cfg = ClusterConfig()
        assert cfg.n_nodes == 16
        assert cfg.topology == "clos"
        assert cfg.cost.mtu == 4096

    def test_bad_n_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_nodes=0)

    def test_bad_topology(self):
        with pytest.raises(ConfigError):
            ClusterConfig(topology="torus")

    def test_prepost_bounded_by_tokens(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                prepost_recv_tokens=100,
                cost=GMCostModel(recv_tokens_per_port=64),
            )

    def test_frozen(self):
        cfg = ClusterConfig()
        with pytest.raises(AttributeError):
            cfg.n_nodes = 3  # type: ignore[misc]


class TestCluster:
    def test_builds_nodes_and_ports(self):
        cluster = Cluster(ClusterConfig(n_nodes=4))
        assert cluster.n_nodes == 4
        assert isinstance(cluster.node(2), Node)
        assert cluster.port(3).port_num == 0
        assert cluster.port(0).free_recv_tokens == 64

    def test_single_topology_selected(self):
        cluster = Cluster(ClusterConfig(n_nodes=4, topology="single"))
        assert cluster.topology.switch_count() == 1

    def test_clos_collapses_below_radix(self):
        cluster = Cluster(ClusterConfig(n_nodes=16, topology="clos"))
        assert cluster.topology.switch_count() == 1

    def test_clos_expands_above_radix(self):
        cluster = Cluster(ClusterConfig(n_nodes=24, topology="clos"))
        assert cluster.topology.switch_count() > 1

    def test_line_topology(self):
        cluster = Cluster(ClusterConfig(n_nodes=8, topology="line"))
        assert cluster.topology.name == "line"

    def test_spawn_on_all(self):
        cluster = Cluster(ClusterConfig(n_nodes=3))
        visited = []

        def program(node):
            yield cluster.sim.timeout(float(node.id))
            visited.append(node.id)

        procs = cluster.spawn_on_all(program)
        cluster.run(until=cluster.sim.all_of(procs))
        assert sorted(visited) == [0, 1, 2]

    def test_each_node_has_engines(self):
        cluster = Cluster(ClusterConfig(n_nodes=2))
        node = cluster.node(0)
        assert node.gm is not None
        assert node.mcast is not None
        assert isinstance(node.host, Host)
        assert node.memory.owner == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            cluster = Cluster(ClusterConfig(n_nodes=3, seed=seed))
            values = [cluster.sim.rng("x").random() for _ in range(5)]
            return values

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_now_property(self):
        cluster = Cluster(ClusterConfig(n_nodes=2))
        assert cluster.now == 0.0
        cluster.run(until=5.0)
        assert cluster.now == 5.0


class TestHost:
    def test_compute_accounts_time(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        host = cluster.node(0).host

        def prog():
            yield from host.compute(12.5)

        cluster.run(until=cluster.spawn(prog()))
        assert host.compute_time == pytest.approx(12.5)
        assert cluster.now == pytest.approx(12.5)

    def test_zero_compute_is_noop(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        host = cluster.node(0).host

        def prog():
            yield from host.compute(0.0)
            yield cluster.sim.timeout(1.0)

        cluster.run(until=cluster.spawn(prog()))
        assert host.compute_time == 0.0

    def test_negative_compute_rejected(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        host = cluster.node(0).host
        with pytest.raises(ValueError):
            list(host.compute(-1.0))

    def test_blocked_accounting(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        host = cluster.node(0).host
        host.charge_blocked(3.0)
        host.charge_blocked(4.0)
        assert host.blocked_time == 7.0
        host.reset_accounting()
        assert host.blocked_time == 0.0
        assert host.compute_time == 0.0

    def test_cpu_contention_serializes(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        host = cluster.node(0).host
        ends = []

        def prog(tag):
            yield from host.compute(10.0)
            ends.append((tag, cluster.now))

        a = cluster.spawn(prog("a"))
        b = cluster.spawn(prog("b"))
        cluster.run(until=cluster.sim.all_of([a, b]))
        assert ends == [("a", 10.0), ("b", 20.0)]
