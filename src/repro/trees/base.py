"""The spanning-tree data structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import TreeError

__all__ = ["SpanningTree"]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted multicast tree over node (network) IDs.

    ``children[n]`` is the **ordered** list of n's children — the order is
    the send order, which matters for latency (first child's subtree has
    the most time to forward).  Instances are immutable and validated at
    construction.
    """

    root: int
    children: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize child lists to tuples.
        object.__setattr__(
            self,
            "children",
            {n: tuple(kids) for n, kids in self.children.items()},
        )
        self.validate()

    # -- structure --------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        """All nodes, in BFS order from the root."""
        out = [self.root]
        frontier = [self.root]
        while frontier:
            nxt: list[int] = []
            for n in frontier:
                for c in self.children.get(n, ()):
                    out.append(c)
                    nxt.append(c)
            frontier = nxt
        return out

    @property
    def size(self) -> int:
        return len(self.nodes)

    def children_of(self, node: int) -> tuple[int, ...]:
        return self.children.get(node, ())

    def parent_of(self, node: int) -> int | None:
        if node == self.root:
            return None
        for n, kids in self.children.items():
            if node in kids:
                return n
        raise TreeError(f"node {node} not in tree")

    def depth_of(self, node: int) -> int:
        depth = 0
        while node != self.root:
            parent = self.parent_of(node)
            assert parent is not None
            node = parent
            depth += 1
        return depth

    @property
    def max_depth(self) -> int:
        return max((self.depth_of(n) for n in self.nodes), default=0)

    def leaves(self) -> list[int]:
        return [n for n in self.nodes if not self.children.get(n)]

    def interior(self) -> list[int]:
        """Non-leaf, non-root nodes — the forwarding nodes."""
        return [
            n for n in self.nodes
            if n != self.root and self.children.get(n)
        ]

    def subtree_nodes(self, node: int) -> list[int]:
        out = [node]
        frontier = [node]
        while frontier:
            nxt: list[int] = []
            for n in frontier:
                for c in self.children.get(n, ()):
                    out.append(c)
                    nxt.append(c)
            frontier = nxt
        return out

    def edges(self) -> Iterator[tuple[int, int]]:
        for n, kids in self.children.items():
            for c in kids:
                yield (n, c)

    # -- validation ------------------------------------------------------------
    def validate(self) -> None:
        seen: set[int] = set()
        frontier = [self.root]
        seen.add(self.root)
        while frontier:
            nxt: list[int] = []
            for n in frontier:
                for c in self.children.get(n, ()):
                    if c in seen:
                        raise TreeError(
                            f"node {c} reached twice — not a tree"
                        )
                    seen.add(c)
                    nxt.append(c)
            frontier = nxt
        extra = set(self.children) - seen
        if extra:
            raise TreeError(
                f"children map names unreachable parents: {sorted(extra)}"
            )

    def __repr__(self) -> str:
        return (
            f"<SpanningTree root={self.root} n={self.size} "
            f"depth={self.max_depth}>"
        )
