"""An MPICH-GM-like MPI layer over the simulated GM stack.

Models what the paper's §5 modification touched: communicators over GM
ports, eager (≤ 16,287 bytes) and rendezvous (> 16 K, RDMA-style)
point-to-point transfer, the host-based binomial ``MPI_Bcast`` and the
NIC-based ``MPI_Bcast`` with demand-driven group creation, a
dissemination barrier, and the process-skew experiment machinery.
"""

from repro.mpi.barrier import dissemination_rounds
from repro.mpi.comm import Communicator, RankContext
from repro.mpi.skew import SkewResult, run_skew_experiment

__all__ = [
    "Communicator",
    "RankContext",
    "SkewResult",
    "dissemination_rounds",
    "run_skew_experiment",
]
