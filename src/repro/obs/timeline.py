"""Chrome trace-event export: the Fig. 2 timeline as an interactive artifact.

Converts :class:`~repro.sim.trace.TraceRecord` streams into the Chrome
trace-event JSON format (the ``{"traceEvents": [...]}`` flavour), viewable
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* one **pid per node** — ``nic[3]`` and ``host[3]`` both land in process
  3, named ``node[3]``; non-node components (``network``) get their own
  synthetic pid after the last node;
* one **tid per engine** within the node (``nic``, ``host``, …), named
  via thread-name metadata events;
* paired records (``tx_start``/``tx_done`` by packet ``uid``, via the
  same stack-pairing as :meth:`Tracer.spans`) become complete ``"X"``
  duration events;
* everything else becomes a thread-scoped instant ``"i"`` event carrying
  its trace fields as ``args``.

Simulated time is microseconds throughout the stack, which is exactly
the trace-event ``ts`` unit — no conversion.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, Sequence

from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "SPAN_RULES",
    "chrome_trace",
    "chrome_trace_events",
    "counter_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "spans_from_chrome_trace",
]

#: ``(start_category, end_category, pairing field, event name)`` — records
#: paired per component into ``"X"`` duration events.
SPAN_RULES: tuple[tuple[str, str, str, str], ...] = (
    ("tx_start", "tx_done", "uid", "tx"),
)

_COMPONENT_RE = re.compile(r"^(?P<engine>[A-Za-z_]\w*)\[(?P<idx>\d+)\]$")

#: Trace-event phases the validator accepts (the subset this exporter
#: emits plus the common hand-authored ones).
_KNOWN_PHASES = frozenset("BEXiIMCbnesftPON")


def _json_safe(value: Any) -> Any:
    """Coerce a trace-field value into something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_json_safe(v) for v in items]
    return repr(value)


def _split_component(component: str) -> tuple[str, int | None]:
    """``"nic[3]"`` -> ``("nic", 3)``; ``"network"`` -> ``("network", None)``."""
    match = _COMPONENT_RE.match(component)
    if match is None:
        return component, None
    return match.group("engine"), int(match.group("idx"))


def chrome_trace_events(
    records: Iterable[TraceRecord],
    span_rules: Sequence[tuple[str, str, str, str]] = SPAN_RULES,
) -> list[dict[str, Any]]:
    """Convert trace records into a list of trace-event dicts.

    Span starts and ends are paired per ``(component, key value)`` with a
    stack, mirroring :meth:`Tracer.spans` — a retransmitted packet whose
    ``tx_start`` fires twice yields two ``"X"`` events, not one.
    """
    records = list(records)
    start_rules = {rule[0]: rule for rule in span_rules}
    end_rules = {rule[1]: rule for rule in span_rules}

    # -- pass 1: pair spans ------------------------------------------------
    open_spans: dict[tuple, list[TraceRecord]] = {}
    spans: list[tuple[TraceRecord, TraceRecord, tuple[str, str, str, str]]] = []
    consumed: set[int] = set()
    for i, rec in enumerate(records):
        rule = start_rules.get(rec.category)
        if rule is not None and rule[2] in rec.fields:
            key = (rec.component, rec.category, rec.fields[rule[2]])
            open_spans.setdefault(key, []).append(rec)
            consumed.add(i)
            continue
        rule = end_rules.get(rec.category)
        if rule is not None and rule[2] in rec.fields:
            key = (rec.component, rule[0], rec.fields[rule[2]])
            stack = open_spans.get(key)
            if stack:
                spans.append((stack.pop(), rec, rule))
                consumed.add(i)
            # An unmatched end falls through to an instant event below.

    # -- pass 2: assign pids (nodes first, then synthetic) and tids --------
    node_ids = sorted(
        {idx for rec in records
         for _eng, idx in (_split_component(rec.component),)
         if idx is not None}
    )
    next_pid = (max(node_ids) + 1) if node_ids else 0
    pids: dict[str, int] = {}
    process_names: dict[int, str] = {i: f"node[{i}]" for i in node_ids}
    tids: dict[tuple[int, str], int] = {}

    def locate(component: str) -> tuple[int, int]:
        nonlocal next_pid
        engine, idx = _split_component(component)
        if idx is not None:
            pid = idx
        else:
            pid = pids.get(component)
            if pid is None:
                pid = pids[component] = next_pid
                process_names[pid] = component
                next_pid += 1
        tid = tids.setdefault((pid, engine), len(
            [k for k in tids if k[0] == pid]) + 1)
        return pid, tid

    events: list[dict[str, Any]] = []
    for start, end, rule in spans:
        pid, tid = locate(start.component)
        args = {k: _json_safe(v) for k, v in start.fields.items()}
        events.append({
            "name": rule[3],
            "cat": start.category,
            "ph": "X",
            "ts": start.time,
            "dur": end.time - start.time,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for i, rec in enumerate(records):
        if i in consumed:
            continue
        pid, tid = locate(rec.component)
        events.append({
            "name": rec.category,
            "cat": rec.category,
            "ph": "i",
            "s": "t",
            "ts": rec.time,
            "pid": pid,
            "tid": tid,
            "args": {k: _json_safe(v) for k, v in rec.fields.items()},
        })
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))

    # -- metadata: names for Perfetto's process/thread rails ---------------
    meta: list[dict[str, Any]] = []
    for pid, name in sorted(process_names.items()):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for (pid, engine), tid in sorted(tids.items()):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": engine},
        })
    return meta + events


def counter_events(
    series: dict[str, list[tuple[float, int, float]]],
) -> list[dict[str, Any]]:
    """Gauge sample series as Chrome ``"C"`` counter events.

    *series* is the :func:`repro.obs.flight.gauge_series` shape —
    ``{name: [(t, node, value), ...]}``.  Each node's samples become a
    counter track in that node's process rail (Perfetto draws one area
    chart per ``(pid, name)``), so SRAM occupancy and send-window depth
    ride alongside the tx spans they explain.
    """
    events: list[dict[str, Any]] = []
    for name in sorted(series):
        for t, node, value in series[name]:
            events.append({
                "name": name,
                "ph": "C",
                "ts": t,
                "pid": node if node >= 0 else 0,
                "tid": 0,
                "args": {"value": value},
            })
    events.sort(key=lambda e: (e["ts"], e["pid"], e["name"]))
    return events


def chrome_trace(
    trace: Tracer | Iterable[TraceRecord],
    span_rules: Sequence[tuple[str, str, str, str]] = SPAN_RULES,
    counters: dict[str, list[tuple[float, int, float]]] | None = None,
) -> dict[str, Any]:
    """Full trace-event JSON object for *trace*.

    ``counters`` optionally appends gauge series (the
    :func:`repro.obs.flight.gauge_series` shape) as ``"C"`` counter
    tracks.
    """
    records = trace.records if isinstance(trace, Tracer) else trace
    events = chrome_trace_events(records, span_rules)
    if counters:
        events += counter_events(counters)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_unit": "us"},
    }


def write_chrome_trace(
    path: str,
    trace: Tracer | Iterable[TraceRecord],
    span_rules: Sequence[tuple[str, str, str, str]] = SPAN_RULES,
    counters: dict[str, list[tuple[float, int, float]]] | None = None,
) -> dict[str, Any]:
    """Write trace-event JSON to *path* and return the payload."""
    payload = chrome_trace(trace, span_rules, counters=counters)
    errors = validate_chrome_trace(payload)
    if errors:  # pragma: no cover - exporter bug guard
        raise ValueError(f"refusing to write malformed trace: {errors[:3]}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return payload


def validate_chrome_trace(payload: Any) -> list[str]:
    """Well-formedness errors in a trace-event JSON object (empty = valid).

    Checks the trace-event schema fields CI gates on: every event has a
    known ``ph``, and every non-metadata event carries a numeric
    non-negative ``ts``, integer ``pid``/``tid``, and a string ``name``;
    ``"X"`` events additionally need a non-negative ``dur``, and ``"C"``
    counter events an ``args`` object of numeric series values.
    """
    errors: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not an object with a 'traceEvents' array"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing string name")
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: missing integer tid")
        if ph == "M":
            continue  # metadata events need no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: missing non-negative ts (got {ts!r})")
        if ph == "X":
            dur = ev.get("dur")
            if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                    or dur < 0):
                errors.append(
                    f"{where}: X event needs non-negative dur (got {dur!r})"
                )
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(
                    f"{where}: C event needs a non-empty args object"
                )
            elif any(
                not isinstance(v, (int, float)) or isinstance(v, bool)
                for v in args.values()
            ):
                errors.append(
                    f"{where}: C event args must be numeric series values"
                )
    return errors


def spans_from_chrome_trace(
    payload: dict[str, Any], name: str
) -> list[tuple[int, float, float]]:
    """``(pid, start, end)`` for every ``"X"`` event called *name*.

    The round-trip helper: tests re-derive the Fig. 2 send timeline from
    the exported JSON and compare it against :meth:`Tracer.spans`.
    """
    out = []
    for ev in payload.get("traceEvents", []):
        if ev.get("ph") == "X" and ev.get("name") == name:
            out.append((ev["pid"], ev["ts"], ev["ts"] + ev["dur"]))
    return sorted(out)
