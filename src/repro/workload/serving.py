"""The sustained-traffic serving workload.

The paper's measurements are one-shot broadcasts; the regime its claims
actually target — and ROADMAP item 5's north star — is *serving*: many
concurrent multicast groups over one cluster, continuous message
arrivals, membership churn.  :class:`TrafficEngine` runs that workload
from a :class:`~repro.scenario.spec.TrafficSpec`:

* ``n_groups`` groups share the cluster; group *g* is rooted at node
  ``g % n_nodes`` with ``group_size`` members on the following nodes,
  and is bound to ``schemes[g % len(schemes)]`` through the multicast
  scheme registry;
* each root posts messages on a seeded Poisson schedule (or replays an
  explicit arrival trace), **at most one outstanding message per
  group** — a late send completion makes the root post the overdue
  arrivals immediately, preserving the schedule's determinism without
  exhausting send tokens;
* membership churn rotates one member out for a spare node at seeded
  exponential gaps.  The change is *applied by the root between sends*
  (a fresh scheme binding — new group epoch — so reliability state
  never straddles a membership change);
* every member node runs one receive loop; deliveries are attributed
  to their group and post time through the message ``info`` payload
  and fed to the duck-typed ``sim.metrics`` slot (per-group delivery
  histograms, ``serving.*`` counters/gauges) as well as to the plain
  accumulators behind :class:`ServingStats`.

Everything is driven by named simulator RNG streams, so a pinned seed
makes the whole run — including the stats snapshot — bit-identical
across repeats (verified by a regression test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.cluster import Cluster
from repro.mcast.schemes import create_scheme, get_scheme
from repro.trees import build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.harness import Harness
    from repro.scenario.spec import ScenarioSpec, TrafficSpec

__all__ = ["GroupStats", "ServingStats", "TrafficEngine", "run_serving"]

#: Delivery-latency histogram buckets (µs) for the serving metrics.
DELIVERY_BUCKETS_US = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0,
)


@dataclass
class GroupStats:
    """Per-group serving outcome."""

    scheme: str
    posted: int = 0
    delivered: int = 0
    churn_epochs: int = 0
    sum_delivery_us: float = 0.0
    max_delivery_us: float = 0.0

    @property
    def mean_delivery_us(self) -> float:
        return self.sum_delivery_us / self.delivered if self.delivered else 0.0


@dataclass
class ServingStats:
    """Everything one serving run produced (deterministic per seed)."""

    duration_us: float
    warmup_us: float
    n_groups: int
    msgs_posted: int = 0
    msgs_delivered: int = 0
    churn_events: int = 0
    sim_events: int = 0
    per_group: dict[int, GroupStats] = field(default_factory=dict)
    #: all post-warmup delivery latencies, in delivery order (µs)
    latencies_us: list[float] = field(default_factory=list)

    @property
    def measured_us(self) -> float:
        return self.duration_us - self.warmup_us

    @property
    def delivered_msgs_per_sec(self) -> float:
        """Deliveries per *simulated* second over the measured window."""
        return self.msgs_delivered / (self.measured_us * 1e-6)

    @property
    def sim_events_per_us(self) -> float:
        return self.sim_events / self.duration_us

    def quantile(self, q: float) -> float:
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able, wall-clock-free summary (the determinism probe)."""
        return {
            "duration_us": self.duration_us,
            "warmup_us": self.warmup_us,
            "n_groups": self.n_groups,
            "msgs_posted": self.msgs_posted,
            "msgs_delivered": self.msgs_delivered,
            "churn_events": self.churn_events,
            "sim_events": self.sim_events,
            "delivered_msgs_per_sec": round(self.delivered_msgs_per_sec, 6),
            "p50_delivery_us": round(self.quantile(0.50), 6),
            "p99_delivery_us": round(self.quantile(0.99), 6),
            "per_group": {
                gid: {
                    "scheme": g.scheme,
                    "posted": g.posted,
                    "delivered": g.delivered,
                    "churn_epochs": g.churn_epochs,
                    "mean_delivery_us": round(g.mean_delivery_us, 6),
                    "max_delivery_us": round(g.max_delivery_us, 6),
                }
                for gid, g in sorted(self.per_group.items())
            },
        }


class _Group:
    """One serving group: membership, scheme binding, pending churn."""

    __slots__ = (
        "index", "root", "members", "scheme_key", "bound",
        "pending_members", "stats",
    )

    def __init__(self, index: int, root: int, members: list[int], scheme: str):
        self.index = index
        self.root = root
        self.members = members
        self.scheme_key = scheme
        self.bound = None
        self.pending_members: list[int] | None = None
        self.stats = GroupStats(scheme=scheme)


class TrafficEngine:
    """Runs one serving scenario (spec kind ``"serving"``) to completion."""

    def __init__(
        self,
        spec: "ScenarioSpec",
        registry: Any = None,
        cluster: Cluster | None = None,
    ):
        if spec.traffic is None:
            raise ValueError("TrafficEngine needs a spec with traffic")
        self.spec = spec
        self.traffic: "TrafficSpec" = spec.traffic
        # Partitioned runs inject a shard-local cluster (remote nodes
        # are None slots) and pin group ids: shards allocate from
        # independent process-global counters, so the id stamped into a
        # packet must be derivable from the group index alone for every
        # shard's table to agree.
        self.cluster = cluster if cluster is not None else Cluster(spec.cluster)
        self._pin_group_ids = cluster is not None
        if registry is not None:
            self.cluster.sim.metrics = registry
        t = self.traffic
        self.stats = ServingStats(
            duration_us=t.duration_us,
            warmup_us=t.warmup_us,
            n_groups=t.n_groups,
        )
        self.groups = [self._make_group(i) for i in range(t.n_groups)]
        self.stats.per_group = {g.index: g.stats for g in self.groups}

    # -- group lifecycle ---------------------------------------------------
    def _make_group(self, index: int) -> _Group:
        n = self.cluster.n_nodes
        t = self.traffic
        root = index % n
        members = [(root + 1 + j) % n for j in range(t.group_size)]
        return _Group(index, root, members, t.schemes[index % len(t.schemes)])

    def _bind(self, group: _Group, size_hint: int) -> None:
        """(Re)bind the group's scheme to its current membership.

        A fresh binding per membership epoch: NIC-table schemes install
        the new tree under a fresh group id, so reliability state from
        the previous epoch is never reused.
        """
        scheme_spec = get_scheme(group.scheme_key)
        if scheme_spec.tree_uses_cost:
            tree = build_tree(
                group.root, group.members, shape=scheme_spec.default_tree,
                cost=self.cluster.cost, size=size_hint,
            )
        else:
            tree = build_tree(
                group.root, group.members, shape=scheme_spec.default_tree
            )
        group.bound = create_scheme(group.scheme_key, self.cluster, tree)
        if self._pin_group_ids:
            group.bound.group_id = group.index + 1
        group.bound.install()

    def _apply_churn(self, group: _Group) -> None:
        group.members = group.pending_members
        group.pending_members = None
        self._bind(group, self.traffic.sizes[0])
        group.stats.churn_epochs += 1
        m = self.cluster.sim.metrics
        if m is not None:
            m.inc("serving.churn_applied")

    # -- arrival schedules -------------------------------------------------
    def _arrival_gaps(self, group: _Group):
        """Deterministic generator of the group's absolute arrival times."""
        t = self.traffic
        if t.arrival == "trace":
            yield from (
                when for when, gidx in t.trace_arrivals
                if gidx == group.index
            )
            return
        rng = self.cluster.sim.rng(f"serving.arrivals[{group.index}]")
        when = 0.0
        while True:
            when += rng.expovariate(t.rate_per_group)
            yield when

    # -- host programs -----------------------------------------------------
    def _root_prog(self, group: _Group) -> Generator:
        t = self.traffic
        cluster = self.cluster
        sim = cluster.sim
        m = sim.metrics
        sizes = t.sizes
        for when in self._arrival_gaps(group):
            if when >= t.duration_us:
                return
            if when > sim.now:
                yield sim.timeout(when - sim.now)
            if group.pending_members is not None:
                self._apply_churn(group)
            size = sizes[group.stats.posted % len(sizes)]
            info = {"sg": group.index, "t0": sim.now}
            yield from group.bound.send(size, info=info)
            group.stats.posted += 1
            self.stats.msgs_posted += 1
            if m is not None:
                m.inc("serving.msgs_posted")

    def _member_prog(self, node_id: int) -> Generator:
        cluster = self.cluster
        sim = cluster.sim
        port = cluster.port(node_id)
        t = self.traffic
        stats = self.stats
        while True:
            completion = yield from port.receive()
            info = completion.info or {}
            gidx = info.get("sg")
            now = sim.now
            if gidx is not None:
                group = self.groups[gidx]
                t0 = info.get("t0", 0.0)
                if t0 >= t.warmup_us:
                    latency = now - t0
                    stats.msgs_delivered += 1
                    stats.latencies_us.append(latency)
                    gs = group.stats
                    gs.delivered += 1
                    gs.sum_delivery_us += latency
                    if latency > gs.max_delivery_us:
                        gs.max_delivery_us = latency
                    m = sim.metrics
                    if m is not None:
                        m.inc("serving.msgs_delivered")
                        m.observe(
                            "serving.delivery_us", latency,
                            DELIVERY_BUCKETS_US,
                        )
                        m.observe(
                            f"serving.group[{gidx}].delivery_us", latency,
                            DELIVERY_BUCKETS_US,
                        )
            yield from port.provide_receive_buffer()
            if gidx is not None:
                yield from self.groups[gidx].bound.relay(
                    node_id, completion.size, info=info
                )

    def _churn_prog(self) -> Generator:
        t = self.traffic
        sim = self.cluster.sim
        rng = sim.rng("serving.churn")
        n = self.cluster.n_nodes
        while True:
            yield sim.timeout(rng.expovariate(1.0 / t.churn_interval_us))
            group = self.groups[rng.randrange(len(self.groups))]
            current = (
                group.pending_members
                if group.pending_members is not None
                else group.members
            )
            spares = sorted(
                set(range(n)) - set(current) - {group.root}
            )
            if not spares:
                continue
            leave = rng.randrange(len(current))
            join = spares[rng.randrange(len(spares))]
            updated = list(current)
            updated[leave] = join
            group.pending_members = updated
            self.stats.churn_events += 1
            m = sim.metrics
            if m is not None:
                m.inc("serving.churn_scheduled")

    # -- run ---------------------------------------------------------------
    def start(self) -> None:
        """Bind every group and spawn every (locally present) program.

        On a full cluster this spawns everything; on a partitioned shard
        ``is_local`` filters programs to the nodes this shard owns (the
        arrival RNG streams are named per group, so a root draws the
        same schedule whichever shard it runs on).
        """
        t = self.traffic
        cluster = self.cluster
        for group in self.groups:
            self._bind(group, t.sizes[0])
        for group in self.groups:
            if cluster.is_local(group.root):
                cluster.spawn(
                    self._root_prog(group),
                    name=f"serving_root[{group.index}]",
                )
        for node_id in range(cluster.n_nodes):
            if cluster.is_local(node_id):
                cluster.spawn(
                    self._member_prog(node_id), name=f"serving_rx[{node_id}]"
                )
        if t.churn_interval_us:
            cluster.spawn(self._churn_prog(), name="serving_churn")

    def finalize(self) -> ServingStats:
        """Stamp the end-of-run stats (after the clock reached duration)."""
        stats = self.stats
        stats.sim_events = self.cluster.sim.events_processed
        m = self.cluster.sim.metrics
        if m is not None:
            # Simulated-time rates only: wall-clock numbers would break
            # the pinned-seed determinism of the metrics snapshot.
            m.set_gauge(
                "serving.delivered_msgs_per_sec", stats.delivered_msgs_per_sec
            )
            m.set_gauge("serving.sim_events_per_us", stats.sim_events_per_us)
        return stats

    def run(self) -> ServingStats:
        self.start()
        self.cluster.run(until=self.traffic.duration_us)
        return self.finalize()


def run_serving(harness: "Harness") -> dict[int, ServingStats]:
    """Harness runner for workload kind ``"serving"``.

    Registered with :func:`repro.scenario.register_workload_runner` on
    :mod:`repro.workload` import; returns the ``values`` mapping for the
    :class:`~repro.scenario.harness.ScenarioResult` (one run, keyed 0).
    """
    if harness.spec.partition is not None:
        from repro.workload.partitioned import run_serving_partitioned

        return {
            0: run_serving_partitioned(
                harness.spec,
                registry=harness.registry,
                flight=getattr(harness, "flight", None),
            )
        }
    engine = TrafficEngine(harness.spec, registry=harness.registry)
    flight = getattr(harness, "flight", None)
    if flight is not None:
        engine.cluster.sim.flight = flight
    ts = getattr(harness, "timeseries", None)
    if ts is not None:
        ts.install(engine.cluster.sim, harness.spec.traffic.duration_us)
    stats = engine.run()
    if ts is not None:
        ts.finalize(engine.cluster.sim.now)
    return {0: stats}
