"""Unit tests for group state and the group table."""

import pytest

from repro.errors import GroupError
from repro.mcast.group import GroupState, GroupTable, local_views
from repro.trees import SpanningTree


def test_group_state_root():
    state = GroupState(group_id=1, root=0, parent=None, children=(1, 2))
    assert state.is_root
    assert state.child_acked == {1: 0, 2: 0}


def test_group_state_intermediate():
    state = GroupState(group_id=1, root=0, parent=0, children=(3,))
    assert not state.is_root


def test_alloc_seq_monotonic():
    state = GroupState(group_id=1, root=0, parent=None, children=(1,))
    assert [state.alloc_seq() for _ in range(3)] == [1, 2, 3]


def test_min_child_acked():
    state = GroupState(group_id=1, root=0, parent=None, children=(1, 2))
    state.child_acked[1] = 5
    state.child_acked[2] = 3
    assert state.min_child_acked() == 3


def test_min_child_acked_leaf():
    state = GroupState(group_id=1, root=0, parent=0, children=())
    state.next_send_seq = 7
    assert state.min_child_acked() == 6


class TestGroupTable:
    def test_install_and_get(self):
        table = GroupTable()
        state = GroupState(group_id=5, root=0, parent=None, children=())
        table.install(state)
        assert table.get(5) is state
        assert 5 in table
        assert len(table) == 1

    def test_double_install_rejected(self):
        table = GroupTable()
        state = GroupState(group_id=5, root=0, parent=None, children=())
        table.install(state)
        with pytest.raises(GroupError):
            table.install(state)

    def test_require_unknown_raises(self):
        with pytest.raises(GroupError):
            GroupTable().require(99)

    def test_remove(self):
        table = GroupTable()
        table.install(GroupState(group_id=5, root=0, parent=None, children=()))
        table.remove(5)
        assert 5 not in table
        with pytest.raises(GroupError):
            table.remove(5)


class TestLocalViews:
    def test_views_cover_tree(self):
        tree = SpanningTree(root=0, children={0: (1, 2), 1: (3,)})
        views = local_views(7, tree)
        assert set(views) == {0, 1, 2, 3}
        assert views[0].parent is None
        assert views[0].children == (1, 2)
        assert views[1].parent == 0
        assert views[1].children == (3,)
        assert views[3].parent == 1
        assert views[3].children == ()
        assert all(v.group_id == 7 for v in views.values())
        assert all(v.root == 0 for v in views.values())

    def test_port_num_propagates(self):
        tree = SpanningTree(root=0, children={0: (1,)})
        views = local_views(1, tree, port_num=4)
        assert views[1].port_num == 4
