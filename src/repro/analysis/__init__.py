"""Post-run analysis: where did the time go?

Utilization reports over a cluster's resources (LANai processors, PCI
buses, SRAM copy engines, links) — the evidence trail behind the
performance comparisons: host-based forwarding burns PCI at every
intermediate, the NIC-based scheme burns a little LANai instead.
"""

from repro.analysis.utilization import (
    ClusterUtilization,
    NodeUtilization,
    cluster_utilization,
    render_utilization,
)

__all__ = [
    "ClusterUtilization",
    "NodeUtilization",
    "cluster_utilization",
    "render_utilization",
]
