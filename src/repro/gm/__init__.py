"""GM 2.0 user-level protocol over the simulated NIC.

Implements the GM machinery the paper builds on: ports with OS-bypass
protection, send/receive tokens, per-connection Go-back-N reliability with
send records and timeout retransmission, registered-memory accounting, and
host event queues — plus the GM-2 additions (myrinet packet descriptors
with callback handlers) that enable the NIC-based multicast.
"""

from repro.gm.api import GMPort, RecvCompletion, SendHandle
from repro.gm.memory import RegisteredMemory, RegisteredRegion
from repro.gm.params import GMCostModel
from repro.gm.protocol import GMEngine
from repro.gm.tokens import ReceiveToken, SendToken

__all__ = [
    "GMCostModel",
    "GMEngine",
    "GMPort",
    "ReceiveToken",
    "RecvCompletion",
    "RegisteredMemory",
    "RegisteredRegion",
    "SendHandle",
    "SendToken",
]
