"""Chaos integration: random mixed workloads + global invariants.

Hypothesis drives random mixtures of unicasts, multicasts, barriers,
allreduces and broadcasts over lossy fabrics, then asserts the global
invariants the stack must never violate: exactly-once in-order delivery,
drained buffers and tokens, no pinned memory, no lingering retransmit
state.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.mpi import Communicator
from repro.net import BernoulliLoss


def assert_quiescent(cluster):
    """The invariants that must hold once everything drained."""
    for node in cluster.nodes:
        assert node.nic.send_buffers.free == node.nic.send_buffers.size
        assert node.nic.recv_buffers.free == node.nic.recv_buffers.size
        assert node.memory.registered_bytes == 0, node.id
        assert node.mcast.pending_retransmit_state() == {}
        for state in node.mcast.table._groups.values():
            assert not state.held
        for coll_state in node.coll._state.values():
            assert coll_state.epochs == {}
    for port in cluster.ports:
        assert port.free_send_tokens == cluster.cost.send_tokens_per_port


OPS = ["bcast", "allreduce", "barrier", "allgather", "p2p"]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=9999),
    rate=st.floats(min_value=0.0, max_value=0.12),
    script=st.lists(st.sampled_from(OPS), min_size=1, max_size=6),
    nic=st.booleans(),
)
def test_random_mixed_workload(n, seed, rate, script, nic):
    cluster = Cluster(
        ClusterConfig(n_nodes=n, seed=seed),
        loss=BernoulliLoss(rate) if rate > 0 else None,
    )
    comm = Communicator(cluster, nic_bcast=nic)
    outcomes = {r: [] for r in range(n)}

    def program(ctx):
        for step, op in enumerate(script):
            if op == "bcast":
                value = ("b", step) if ctx.rank == 0 else None
                value = yield from ctx.bcast(root=0, size=257, payload=value)
                outcomes[ctx.rank].append(value)
            elif op == "allreduce":
                out = yield from ctx.allreduce(ctx.rank + step, nic=nic)
                outcomes[ctx.rank].append(out)
            elif op == "barrier":
                yield from ctx.barrier(nic=nic)
                outcomes[ctx.rank].append("barrier")
            elif op == "allgather":
                out = yield from ctx.allgather(64, value=ctx.rank, nic=nic)
                outcomes[ctx.rank].append(tuple(out))
            elif op == "p2p":
                if ctx.rank == 0 and n > 1:
                    yield from ctx.send(1, 96, tag=step, payload=step)
                    outcomes[ctx.rank].append(("sent", step))
                elif ctx.rank == 1:
                    entry = yield from ctx.recv(source=0, tag=step)
                    outcomes[ctx.rank].append(("got", entry["payload"]))
                else:
                    outcomes[ctx.rank].append(None)

    comm.run(program)
    cluster.run()  # drain every ack, timer, and straggler

    # Semantic checks per op.
    for step, op in enumerate(script):
        if op == "bcast":
            assert all(
                outcomes[r][step] == ("b", step) for r in range(n)
            ), (op, step)
        elif op == "allreduce":
            expected = sum(r + step for r in range(n))
            assert all(
                outcomes[r][step] == expected for r in range(n)
            ), (op, step)
        elif op == "allgather":
            assert all(
                outcomes[r][step] == tuple(range(n)) for r in range(n)
            ), (op, step)
        elif op == "p2p" and n > 1:
            assert outcomes[1][step] == ("got", step)
    assert_quiescent(cluster)


def test_long_steady_stream_with_loss():
    """A longer single scenario: 25 broadcasts under 8% loss."""
    cluster = Cluster(ClusterConfig(n_nodes=6, seed=1),
                      loss=BernoulliLoss(0.08))
    comm = Communicator(cluster)
    got = {r: [] for r in range(6)}

    def program(ctx):
        for k in range(25):
            value = k if ctx.rank == 0 else None
            value = yield from ctx.bcast(root=0, size=1024, payload=value)
            got[ctx.rank].append(value)

    comm.run(program)
    cluster.run()
    for r in range(6):
        assert got[r] == list(range(25))
    assert_quiescent(cluster)
