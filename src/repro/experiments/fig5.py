"""Figure 5: GM-level multicast, NIC-based vs host-based, 4/8/16 nodes.

Paper headlines: improvement up to 1.48× for ≤512-byte messages and up
to 1.86× for 16 KB messages on 16 nodes, with dips at 2 KB / 4 KB
(single-packet messages get neither the multisend fan-out benefit nor
the pipelining benefit).
"""

from __future__ import annotations

from repro.experiments.parallel import run_grid
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel
from repro.scenario import (
    PAPER_SIZES,
    QUICK_SIZES,
    ScenarioGrid,
    multicast_point,
)

__all__ = ["run", "NODE_COUNTS"]

NODE_COUNTS = (4, 8, 16)


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    sizes: list[int] | None = None,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    sizes = sizes or (QUICK_SIZES["multicast"] if quick else PAPER_SIZES)
    iterations = 8 if quick else 25
    result = FigureResult(
        figure_id="fig5",
        title="GM-level multicast latency (µs) and improvement factor, "
        "NIC-based (optimal tree) vs host-based (binomial)",
    )
    lat = {
        (scheme, n): Series(label=f"{scheme.upper()}-{n}")
        for scheme in ("hb", "nb")
        for n in node_counts
    }
    imp = {n: Series(label=f"factor-{n}") for n in node_counts}
    grid = ScenarioGrid("fig5")
    for size in sizes:
        for n in node_counts:
            for scheme in ("hb", "nb"):
                grid.add(
                    (scheme, n, size),
                    multicast_point(
                        n, size, scheme, iterations=iterations, cost=cost
                    ),
                    label=f"fig5[{scheme},n={n},size={size}]",
                )
    values = run_grid(grid, jobs=jobs)
    for size in sizes:
        for n in node_counts:
            hb_lat = values[("hb", n, size)].latency
            nb_lat = values[("nb", n, size)].latency
            lat[("hb", n)].add(size, hb_lat)
            lat[("nb", n)].add(size, nb_lat)
            imp[n].add(size, hb_lat / nb_lat)
    result.series = [lat[("hb", n)] for n in node_counts]
    result.series += [lat[("nb", n)] for n in node_counts]
    result.series += [imp[n] for n in node_counts]
    if 16 in node_counts:
        small = [s for s in sizes if s <= 512]
        result.headlines["max factor, 16 nodes, <=512B (paper: 1.48)"] = max(
            imp[16].y_at(s) for s in small
        )
        if 16384 in sizes:
            result.headlines["factor, 16 nodes, 16KB (paper: 1.86)"] = (
                imp[16].y_at(16384)
            )
        if 4096 in sizes:
            result.headlines["factor, 16 nodes, 4KB (paper: dip)"] = (
                imp[16].y_at(4096)
            )
    result.notes.append(
        "latency = max over destinations of mean delivery + measured "
        "0-byte leaf acknowledgment (the paper's max-over-leaves metric)"
    )
    return result
