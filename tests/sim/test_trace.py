"""Unit tests for the tracer."""

from repro.sim import Simulator
from repro.sim.trace import TraceRecord, Tracer


def test_disabled_by_default():
    sim = Simulator()
    sim.record("c", "evt", x=1)
    assert len(sim.trace) == 0


def test_enabled_records():
    sim = Simulator(trace=True)
    sim.record("nic[0]", "tx_start", uid=1)
    sim.record("nic[1]", "tx_done", uid=1)
    assert len(sim.trace) == 2
    assert sim.trace.records[0].component == "nic[0]"


def test_record_fields_access():
    rec = TraceRecord(1.0, "c", "k", {"a": 5})
    assert rec["a"] == 5
    assert rec.get("missing", 9) == 9


def test_filter_by_component_and_category():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "a", "x", {})
    tracer.record(2.0, "b", "x", {})
    tracer.record(3.0, "a", "y", {})
    assert len(tracer.filter(component="a")) == 2
    assert len(tracer.filter(category="x")) == 1 + 1
    assert len(tracer.filter(component="a", category="x")) == 1


def test_filter_since_and_predicate():
    tracer = Tracer(enabled=True)
    for t in range(5):
        tracer.record(float(t), "c", "k", {"v": t})
    assert len(tracer.filter(since=2.0)) == 3
    assert len(tracer.filter(predicate=lambda r: r["v"] % 2 == 0)) == 3


def test_categories_and_clear():
    tracer = Tracer(enabled=True)
    tracer.record(0.0, "c", "a", {})
    tracer.record(0.0, "c", "b", {})
    assert tracer.categories() == {"a", "b"}
    tracer.clear()
    assert len(tracer) == 0


def test_spans_pairing():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "c", "start", {"id": 1})
    tracer.record(2.0, "c", "start", {"id": 2})
    tracer.record(3.0, "c", "end", {"id": 1})
    tracer.record(5.0, "c", "end", {"id": 2})
    tracer.record(6.0, "c", "end", {"id": 99})  # unmatched end ignored
    spans = tracer.spans("start", "end", "id")
    assert spans == [(1, 1.0, 3.0), (2, 2.0, 5.0)]


def test_spans_reentrant_key_reopens():
    """Regression: a key that re-opens after closing (a retransmitted seq
    re-entering tx) must yield one span per start/end pair — the old
    ``setdefault`` silently dropped every start after the first."""
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "c", "start", {"id": 7})
    tracer.record(2.0, "c", "end", {"id": 7})
    tracer.record(5.0, "c", "start", {"id": 7})  # retransmission re-opens
    tracer.record(6.0, "c", "end", {"id": 7})
    spans = tracer.spans("start", "end", "id")
    assert spans == [(7, 1.0, 2.0), (7, 5.0, 6.0)]


def test_spans_nested_starts_pair_as_stack():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "c", "start", {"id": 7})
    tracer.record(2.0, "c", "start", {"id": 7})  # re-entrant while open
    tracer.record(3.0, "c", "end", {"id": 7})    # closes the 2.0 start
    tracer.record(4.0, "c", "end", {"id": 7})    # closes the 1.0 start
    spans = tracer.spans("start", "end", "id")
    assert spans == [(7, 2.0, 3.0), (7, 1.0, 4.0)]


def test_spans_excess_end_ignored_after_stack_drains():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "c", "start", {"id": 1})
    tracer.record(2.0, "c", "end", {"id": 1})
    tracer.record(3.0, "c", "end", {"id": 1})  # stack empty: ignored
    assert tracer.spans("start", "end", "id") == [(1, 1.0, 2.0)]


def test_iteration():
    tracer = Tracer(enabled=True)
    tracer.record(0.0, "c", "k", {})
    assert [r.category for r in tracer] == ["k"]
