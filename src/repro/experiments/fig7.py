"""Figure 7: skew-tolerance improvement vs system size.

"For both sizes of messages, the improvement factor becomes greater as
the system size increases for a fixed amount of process skew of 400 µs.
This suggests that a larger size system can benefit more from the
NIC-based multicast for the reduced effects of process skew."
"""

from __future__ import annotations

from repro.experiments.fig6 import skew_sweep_point
from repro.experiments.parallel import SweepCell, run_cells
from repro.experiments.report import FigureResult, Series
from repro.gm.params import GMCostModel

__all__ = ["run", "SIZES", "NODE_COUNTS"]

SIZES = (4, 4096)  #: paper: 4-byte and 4 KB messages
NODE_COUNTS = (4, 8, 12, 16)
#: uniform ±1600 µs draw -> mean applied skew ≈ 400 µs
MAX_SKEW = 3200.0


def _cell(n: int, size: int, iterations: int, cost: GMCostModel) -> float:
    """One (system size, message size) point: the improvement factor."""
    hb = skew_sweep_point(n, False, MAX_SKEW, size, iterations, cost)
    nb = skew_sweep_point(n, True, MAX_SKEW, size, iterations, cost)
    return hb.mean_bcast_cpu_time / nb.mean_bcast_cpu_time


def run(
    quick: bool = False,
    cost: GMCostModel | None = None,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    jobs: int | None = 1,
) -> FigureResult:
    cost = cost or GMCostModel()
    iterations = 10 if quick else 30
    counts = (4, 16) if quick else node_counts
    result = FigureResult(
        figure_id="fig7",
        title="Skew-tolerance improvement factor vs system size "
        "(~400 µs mean skew)",
    )
    grid = [(size, n) for size in SIZES for n in counts]
    cells = [
        SweepCell(
            figure="fig7",
            fn=_cell,
            args=(n, size, iterations, cost),
            label=f"fig7[n={n},size={size}]",
        )
        for size, n in grid
    ]
    factors = dict(zip(grid, run_cells(cells, jobs=jobs)))
    for size in SIZES:
        series = Series(label=f"factor-{size}B")
        for n in counts:
            series.add(n, factors[(size, n)])
        result.series.append(series)
    for series in result.series:
        first, last = series.ys()[0], series.ys()[-1]
        result.headlines[
            f"{series.label}: factor growth {counts[0]}->{counts[-1]} nodes "
            "(paper: increases)"
        ] = last - first
    return result
